package router

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"time"

	"ilpec/internal/obs"
)

// This file is the router's observability seam, mirroring the service's
// (internal/service/obs.go): per-route latency metrics, request ids,
// per-request trace trees with upstream grafting (the router's spans
// wrap the node's, so one ?trace=1 request shows router → handler →
// solve phases → journal append), and Prometheus exposition at
// /metrics.

const (
	defaultSlowTrace     = 250 * time.Millisecond
	defaultTraceRingSize = 64
)

// routerRoute classifies a request for metric labels (bounded
// cardinality; arbitrary paths collapse to "other").
func routerRoute(method, path string) string {
	switch {
	case path == "/v1/sessions":
		if method == http.MethodGet {
			return "sessions_list"
		}
		return "session_create"
	case strings.HasPrefix(path, "/v1/sessions/"):
		switch {
		case strings.HasSuffix(path, "/changes"):
			return "session_changes"
		case strings.HasSuffix(path, "/solve"):
			return "session_solve"
		case strings.HasSuffix(path, "/flex"):
			return "session_flex"
		case method == http.MethodDelete:
			return "session_delete"
		default:
			return "session_get"
		}
	case path == "/v1/domains":
		return "domains"
	case path == "/v1/cluster":
		return "cluster"
	case path == "/v1/metrics":
		return "metrics"
	case path == "/metrics":
		return "prom_metrics"
	case path == "/v1/debug/traces":
		return "debug_traces"
	case path == "/healthz":
		return "healthz"
	case path == "/readyz":
		return "readyz"
	default:
		return "other"
	}
}

func statusClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

func wantsTrace(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1" || r.Header.Get("X-EC-Trace") == "1"
}

// mintRequestID returns a random request id (random, like session ids,
// so concurrent routers cannot collide).
func mintRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("router: crypto/rand failed: %v", err))
	}
	return "req-" + hex.EncodeToString(buf[:])
}

// obsResponseWriter captures the status and, for traced requests,
// buffers the body so the router's span tree (with the upstream tree
// grafted in) replaces the node's in the response.
type obsResponseWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	buffer      *bytes.Buffer
}

func (w *obsResponseWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = code
	if w.buffer == nil {
		w.ResponseWriter.WriteHeader(code)
	}
}

func (w *obsResponseWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.buffer != nil {
		return w.buffer.Write(b)
	}
	return w.ResponseWriter.Write(b)
}

func (w *obsResponseWriter) statusOr200() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// instrument wraps the router mux: request ids, the per-request trace
// root, per-route latency/status metrics, the slow-trace ring, and
// trace injection. When the upstream response already carries a "trace"
// field (the node's tree, requested via the forwarded ?trace=1 /
// X-EC-Trace), it is grafted under the router's root so the combined
// tree spans both tiers.
func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routerRoute(r.Method, r.URL.Path)
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = mintRequestID()
			r.Header.Set("X-Request-ID", reqID) // try() forwards it upstream
		}
		w.Header().Set("X-Request-ID", reqID)

		ctx := obs.WithRequestID(r.Context(), reqID)
		ctx, root := obs.NewTrace(ctx, "router "+route)
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		root.SetAttr("request_id", reqID)
		rw := &obsResponseWriter{ResponseWriter: w}
		if wantsTrace(r) {
			rw.buffer = &bytes.Buffer{}
		}

		next.ServeHTTP(rw, r.WithContext(ctx))

		root.End()
		status := rw.statusOr200()
		root.SetAttr("status", strconv.Itoa(status))
		d := root.Duration()
		if rw.buffer != nil {
			rt.flushTraced(rw, root)
		} else {
			rt.traces.Offer(root.Render(), d)
		}
		rt.reg.Histogram("ec_router_request_seconds", "Router request latency by route (seconds).",
			obs.Label{Key: "route", Value: route}).Observe(d)
		rt.reg.Counter("ec_router_requests_total", "Router requests by route and status class.",
			obs.Label{Key: "route", Value: route}, obs.Label{Key: "status", Value: statusClass(status)}).Inc()
	})
}

// flushTraced grafts the upstream node's span tree (if the buffered
// body carries one) under the router root, then releases the response
// with the combined tree in its "trace" field.
func (rt *Router) flushTraced(w *obsResponseWriter, root *obs.Span) {
	body := w.buffer.Bytes()
	var m map[string]any
	if json.Unmarshal(body, &m) == nil && m != nil {
		if raw, ok := m["trace"]; ok {
			if b, err := json.Marshal(raw); err == nil {
				var up obs.SpanOut
				if json.Unmarshal(b, &up) == nil && up.Name != "" {
					root.Graft(&up)
				}
			}
		}
		rendered := root.Render()
		rt.traces.Offer(rendered, root.Duration())
		m["trace"] = rendered
		if out, err := json.MarshalIndent(m, "", "  "); err == nil {
			body = out
		}
	} else {
		rt.traces.Offer(root.Render(), root.Duration())
	}
	w.ResponseWriter.WriteHeader(w.statusOr200())
	w.ResponseWriter.Write(body) //nolint:errcheck // client went away; nothing to do
}

// writeRouterProm renders every Metrics field as an ec_router_<json_tag>
// counter series; reflection keeps the exposition in lockstep with the
// /v1/metrics JSON.
func writeRouterProm(w *bytes.Buffer, m Metrics) {
	v := reflect.ValueOf(m)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		tag, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			continue
		}
		name := "ec_router_" + tag
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v.Field(i).Int())
	}
}

// handleProm serves the router's GET /metrics: Prometheus text by
// default, the JSON form with ?format=json.
func (rt *Router) handleProm(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{
			"router": rt.Metrics(),
			"series": rt.reg.Snapshot(),
		})
		return
	}
	var buf bytes.Buffer
	writeRouterProm(&buf, rt.Metrics())
	rt.reg.WritePrometheus(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes()) //nolint:errcheck // client went away; nothing to do
}

// handleDebugTraces serves the router's GET /v1/debug/traces.
func (rt *Router) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": rt.traces.Snapshot()})
}
