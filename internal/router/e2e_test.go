package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/domain"
	"ilpec/internal/ecclient"
	"ilpec/internal/obs"
	"ilpec/internal/service"
	"ilpec/internal/store"
)

// This file is the cluster chaos differential (the PR's acceptance bar,
// extending the PR 5/6 single-node differentials): three ecserve-style
// nodes over ONE shared file store behind a router, a session script per
// domain, the owner of one session killed mid-batch (queued but not yet
// solved), and the surviving fleet must converge to EXACTLY the state an
// uninterrupted single-node control produces — with the journal gapless
// and free of double commits.

// e2eDomains mirrors the service test matrix: every registered adapter.
var e2eDomains = []string{"cnf", "coloring", "sched", "partition"}

// fleetNode is one in-process "ecserve -cluster" replica.
type fleetNode struct {
	id   string
	st   store.Store
	node *cluster.Node
	svc  *service.Service
	srv  *httptest.Server
}

// startFleetNode brings up one node over the shared dir: its own shared
// file store handle, cluster node (fast heartbeats and a short lease TTL
// so failover fits in a test), service, and HTTP server — the same
// assembly cmd/ecserve performs with -cluster.
func startFleetNode(t *testing.T, dir, id string) *fleetNode {
	t.Helper()
	st, err := store.NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(nil)
	node, err := cluster.NewNode(cluster.Config{
		ID:                id,
		Addr:              "http://" + srv.Listener.Addr().String(),
		Store:             st,
		HeartbeatInterval: 50 * time.Millisecond,
		LeaseTTL:          400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Options{Store: st, Cluster: node})
	srv.Config.Handler = service.NewHandler(svc)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	return &fleetNode{id: id, st: st, node: node, svc: svc, srv: srv}
}

// kill simulates a crash: the HTTP listener dies and heartbeats stop.
// The service object is ABANDONED, never closed — a real crash does not
// run the drain path, so its leases must expire rather than be released,
// and nothing may flush memory state to the store.
func (n *fleetNode) kill() {
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.node.Stop()
}

// scriptStep drives one request through the retrying client and decodes
// the response body generically.
func doJSON(t *testing.T, c *ecclient.Client, method, path string, in any) map[string]any {
	t.Helper()
	var out map[string]any
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.DoJSON(ctx, method, path, in, &out); err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	return out
}

// normalize strips the run-varying fields of a solve response so the
// differential compares only state: the rendered solution, the solver
// status, and the don't-care count.
func normalize(resp map[string]any) map[string]any {
	out := map[string]any{}
	for _, k := range []string{"solution", "status", "dont_cares", "batched"} {
		out[k] = resp[k]
	}
	return out
}

func wireFixture(t *testing.T, name string) (problem any, changes []json.RawMessage) {
	t.Helper()
	d, ok := domain.Get(name)
	if !ok {
		t.Fatalf("domain %q not registered", name)
	}
	fx, ok := d.(domain.Fixtured)
	if !ok {
		t.Fatalf("domain %q has no fixture", name)
	}
	c := fx.Conformance()
	for _, ch := range c.Tightening {
		raw, err := json.Marshal(d.RenderChange(ch))
		if err != nil {
			t.Fatal(err)
		}
		changes = append(changes, raw)
	}
	return d.RenderProblem(c.Problem), changes
}

func TestKillNodeChaosDifferential(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("running cluster kill-node differential under -short (CI race job)")
	}
	dir := t.TempDir()
	nodes := make([]*fleetNode, 3)
	ids := make([]string, 3)
	for i := range nodes {
		nodes[i] = startFleetNode(t, dir, fmt.Sprintf("n%d", i+1))
		ids[i] = nodes[i].id
	}
	alive := map[string]*fleetNode{}
	for _, n := range nodes {
		alive[n.id] = n
	}

	rtStore, err := store.NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Options{
		Store:        rtStore,
		Refresh:      50 * time.Millisecond,
		ProbeTimeout: 500 * time.Millisecond,
		Retries:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// The retrying client of the chaos suite: Retry-After hints honored,
	// capped so lease-expiry waits poll quickly instead of sleeping 1s.
	client := &ecclient.Client{
		Base:    front.URL,
		Retries: 60,
		Backoff: 25 * time.Millisecond,
		MaxWait: 200 * time.Millisecond,
	}

	// Control fleet-of-one: the uninterrupted reference run.
	ctlSvc := service.New(service.Options{})
	defer ctlSvc.Close()
	ctlSrv := httptest.NewServer(service.NewHandler(ctlSvc))
	defer ctlSrv.Close()
	control := &ecclient.Client{Base: ctlSrv.URL, Retries: 3}

	// Phase 1 (pre-kill): per domain, create + initial solve + queue the
	// tightening batch. The batch is journaled but NOT yet solved — the
	// kill lands mid-batch.
	firstSolve := map[string]map[string]any{}
	for _, name := range e2eDomains {
		problem, changes := wireFixture(t, name)
		id := "chaos-" + name
		doJSON(t, client, http.MethodPost, "/v1/sessions",
			map[string]any{"id": id, "domain": name, "problem": problem})
		firstSolve[name] = normalize(doJSON(t, client, http.MethodPost, "/v1/sessions/"+id+"/solve", map[string]any{}))
		doJSON(t, client, http.MethodPost, "/v1/sessions/"+id+"/changes",
			map[string]any{"changes": changes})

		doJSON(t, control, http.MethodPost, "/v1/sessions",
			map[string]any{"id": id, "domain": name, "problem": problem})
		ctlFirst := normalize(doJSON(t, control, http.MethodPost, "/v1/sessions/"+id+"/solve", map[string]any{}))
		if !reflect.DeepEqual(firstSolve[name], ctlFirst) {
			t.Fatalf("%s: pre-kill solve diverges from control:\n fleet  %v\n control %v", name, firstSolve[name], ctlFirst)
		}
		doJSON(t, control, http.MethodPost, "/v1/sessions/"+id+"/changes",
			map[string]any{"changes": changes})
	}

	// Kill the node that owns the CNF session — at least that session is
	// guaranteed to fail over; sessions owned by survivors double as the
	// no-disruption control.
	ring := cluster.BuildRing(ids, cluster.DefaultVirtualNodes)
	victimID, _ := ring.Owner("chaos-cnf")
	victim := alive[victimID]
	victim.kill()
	delete(alive, victimID)
	t.Logf("killed %s (owner of chaos-cnf) mid-batch", victimID)

	// Phase 2: drain the queued batch on every session. For the victim's
	// sessions this exercises the whole failover path — 502s while the
	// ring converges, 503 not_owner while the dead node's lease runs out,
	// then rehydration from the shared journal on the successor.
	for _, name := range e2eDomains {
		id := "chaos-" + name
		got := normalize(doJSON(t, client, http.MethodPost, "/v1/sessions/"+id+"/solve", map[string]any{}))
		want := normalize(doJSON(t, control, http.MethodPost, "/v1/sessions/"+id+"/solve", map[string]any{}))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: post-failover solve diverges from control:\n fleet  %v\n control %v", name, got, want)
		}
		// The session must also agree on the observable problem state.
		gotInfo := doJSON(t, client, http.MethodGet, "/v1/sessions/"+id, nil)
		wantInfo := doJSON(t, control, http.MethodGet, "/v1/sessions/"+id, nil)
		// Stats counters (changes_queued, solves, ...) are per-instance,
		// not durable state — only the problem/solution shape must agree.
		for _, k := range []string{"vars", "clauses", "pending", "solved", "dont_cares"} {
			if !reflect.DeepEqual(gotInfo[k], wantInfo[k]) {
				t.Fatalf("%s: info[%q] = %v, control %v", name, k, gotInfo[k], wantInfo[k])
			}
		}
	}

	// No double commit, no gaps: each session's durable history must be
	// exactly one birth snapshot + solve, changes, solve — regardless of
	// which node wrote which record. A stale-owner replay would show as a
	// duplicate or out-of-sequence record here.
	auditStore, err := store.NewSharedFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer auditStore.Close()
	for _, name := range e2eDomains {
		snap, tail, err := auditStore.Load("chaos-" + name)
		if err != nil {
			t.Fatalf("%s: audit load: %v", name, err)
		}
		seq := snap.Seq
		kinds := map[string]int{}
		for _, rec := range tail {
			if rec.Seq != seq+1 {
				t.Fatalf("%s: journal gap or replay: record seq %d after %d", name, rec.Seq, seq)
			}
			seq = rec.Seq
			kinds[rec.Kind]++
		}
		if kinds[store.KindChanges] != 1 || kinds[store.KindSolve] != 2 {
			t.Fatalf("%s: journal kinds = %v, want exactly 1 changes + 2 solves (double commit?)", name, kinds)
		}
	}

	// The fleet view converges: the victim is gone from membership, and
	// the merged session list still shows every session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		view := doJSON(t, client, http.MethodGet, "/v1/cluster", nil)
		if nodesAny, ok := view["nodes"].([]any); ok && len(nodesAny) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never converged to 2 nodes: %v", doJSON(t, client, http.MethodGet, "/v1/cluster", nil))
		}
		time.Sleep(50 * time.Millisecond)
	}
	list := doJSON(t, client, http.MethodGet, "/v1/sessions", nil)
	gotIDs := map[string]bool{}
	if arr, ok := list["sessions"].([]any); ok {
		for _, v := range arr {
			gotIDs[v.(string)] = true
		}
	}
	for _, name := range e2eDomains {
		if !gotIDs["chaos-"+name] {
			t.Fatalf("merged session list lost chaos-%s: %v", name, list["sessions"])
		}
	}

	// Even after the chaos, every surviving node and the router front must
	// serve a well-formed Prometheus exposition — the fleet stays
	// scrapeable through failover.
	scrape := func(label, base string) string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("%s: scrape /metrics: %v", label, err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("%s: read /metrics: %v", label, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: /metrics status %d: %s", label, resp.StatusCode, raw)
		}
		text := string(raw)
		if err := obs.ValidatePrometheus(text); err != nil {
			t.Fatalf("%s: invalid exposition: %v\n%s", label, err, text)
		}
		return text
	}
	for id, n := range alive {
		text := scrape(id, n.srv.URL)
		if !strings.Contains(text, "ec_service_solves") || !strings.Contains(text, "ec_http_request_seconds_bucket") {
			t.Fatalf("%s: exposition missing service counters or route histograms:\n%s", id, text)
		}
	}
	frontText := scrape("router", front.URL)
	for _, want := range []string{"ec_router_proxied", "ec_router_failovers", `ec_router_request_seconds_bucket{route="session_solve"`} {
		if !strings.Contains(frontText, want) {
			t.Fatalf("router exposition missing %q:\n%s", want, frontText)
		}
	}

	// Graceful teardown of the SURVIVORS only (the victim stays abandoned,
	// as after a real crash). Survivor shutdown releases leases and must
	// not disturb the audited journals.
	for _, n := range alive {
		n.svc.Close()
		n.node.Stop()
		n.srv.Close()
	}
}
