package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/store"
)

// fakeNode is a recording upstream: ready on /readyz, and for anything
// else it captures the request and answers {"node": id} (or a canned
// body when reply is set).
type fakeNode struct {
	id  string
	srv *httptest.Server

	mu     sync.Mutex
	paths  []string
	bodies []string
	reply  func(path string) (int, string)
}

func newFakeNode(t *testing.T, id string) *fakeNode {
	n := &fakeNode{id: id}
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Write([]byte(`{"ready":true}`))
			return
		}
		body, _ := io.ReadAll(r.Body)
		n.mu.Lock()
		n.paths = append(n.paths, r.Method+" "+r.URL.Path)
		n.bodies = append(n.bodies, string(body))
		reply := n.reply
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if reply != nil {
			status, resp := reply(r.URL.Path)
			w.WriteHeader(status)
			w.Write([]byte(resp))
			return
		}
		w.Write([]byte(`{"node":"` + id + `"}`))
	}))
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeNode) hits() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.paths...)
}

// newTestRouter heartbeats every fake node into a shared memory store
// and returns a refreshed router plus its HTTP front end.
func newTestRouter(t *testing.T, nodes ...*fakeNode) (*Router, *httptest.Server) {
	t.Helper()
	st := store.NewMemory()
	members := cluster.NewMembership(st)
	for _, n := range nodes {
		if err := members.Heartbeat(n.id, n.srv.URL, time.Minute, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := New(Options{Store: st, Refresh: time.Hour, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return rt, srv
}

// Every session request must land on the id's ring owner — the same
// owner a node-side ring computes, or placements would diverge.
func TestRoutesSessionsByRingOwner(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	_, front := newTestRouter(t, n1, n2)
	ring := cluster.BuildRing([]string{"n1", "n2"}, cluster.DefaultVirtualNodes)

	byID := map[string]*fakeNode{"n1": n1, "n2": n2}
	for _, id := range []string{"alpha", "beta", "gamma", "delta", "epsilon"} {
		resp, err := http.Get(front.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Node string `json:"node"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		owner, _ := ring.Owner(id)
		if out.Node != owner {
			t.Fatalf("id %q served by %q, ring owner is %q", id, out.Node, owner)
		}
		_ = byID
	}
}

// A create without an id gets one minted and injected, and is routed to
// that id's ring owner.
func TestCreateMintsAndRoutesID(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	rt, front := newTestRouter(t, n1, n2)

	resp, err := http.Post(front.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"domain":"cnf","dimacs":"p cnf 1 1\n1 0\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var got *fakeNode
	for _, n := range []*fakeNode{n1, n2} {
		if len(n.hits()) == 1 {
			got = n
		}
	}
	if got == nil {
		t.Fatal("create reached no upstream exactly once")
	}
	got.mu.Lock()
	body := got.bodies[0]
	got.mu.Unlock()
	var req struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &req); err != nil || !strings.HasPrefix(req.ID, "r-") {
		t.Fatalf("upstream body %q lacks a minted r- id", body)
	}
	ring := cluster.BuildRing([]string{"n1", "n2"}, cluster.DefaultVirtualNodes)
	if owner, _ := ring.Owner(req.ID); owner != got.id {
		t.Fatalf("minted id %q routed to %q, ring owner is %q", req.ID, got.id, owner)
	}
	if rt.Metrics().MintedIDs != 1 {
		t.Fatalf("minted_ids = %d, want 1", rt.Metrics().MintedIDs)
	}
	// A client-chosen id is preserved, not replaced.
	resp, err = http.Post(front.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"id":"mine","domain":"cnf"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rt.Metrics().MintedIDs != 1 {
		t.Fatal("router minted an id the client had already chosen")
	}
}

// When the owner is unreachable, idempotent requests fail over to the
// ring successor and the owner is marked suspect; non-idempotent ones
// answer 502 + Retry-After without being replayed.
func TestFailoverSemantics(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	rt, front := newTestRouter(t, n1, n2)
	ring := cluster.BuildRing([]string{"n1", "n2"}, cluster.DefaultVirtualNodes)

	// Find an id owned by n1 and kill n1.
	id := "alpha"
	for i := 0; ; i++ {
		if owner, _ := ring.Owner(id); owner == "n1" {
			break
		}
		id = "alpha" + strings.Repeat("x", i+1)
	}
	n1.srv.Close()

	resp, err := http.Get(front.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Node string `json:"node"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out.Node != "n2" {
		t.Fatalf("GET after owner death served by %q, want failover to n2", out.Node)
	}
	m := rt.Metrics()
	if m.Failovers == 0 || m.Suspected == 0 {
		t.Fatalf("metrics = %+v, want failovers and suspected counted", m)
	}

	// Suspect marking: the next idempotent request skips n1 entirely.
	before := len(n2.hits())
	resp, err = http.Get(front.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(n2.hits()) != before+1 {
		t.Fatal("suspect owner was not skipped on the follow-up request")
	}

	_ = rt
}

// A POST (changes/solve) must never be replayed by the router: with the
// owner dead but not yet refreshed away, the answer is 502 + Retry-After
// and the successor sees nothing.
func TestNoReplayNonIdempotent(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	_, front := newTestRouter(t, n1, n2)
	ring := cluster.BuildRing([]string{"n1", "n2"}, cluster.DefaultVirtualNodes)
	id := "alpha"
	for i := 0; ; i++ {
		if owner, _ := ring.Owner(id); owner == "n1" {
			break
		}
		id = "alpha" + strings.Repeat("x", i+1)
	}
	// Killed AFTER the refresh: the router still believes n1 is ready.
	n1.srv.Close()
	before := len(n2.hits())
	resp, err := http.Post(front.URL+"/v1/sessions/"+id+"/solve", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("POST solve to dead owner = %d, want 502", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("502 missing Retry-After hint")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	if env.Error.Code != "upstream_unreachable" {
		t.Fatalf("error code %q, want upstream_unreachable", env.Error.Code)
	}
	if got := len(n2.hits()); got != before {
		t.Fatalf("non-idempotent request was replayed onto n2 (%d hits, want %d)", got, before)
	}
}

// The list fan-out merges per-node pages cursor-safely: ids past the
// smallest truncated node's cursor are dropped so no id can be skipped.
func TestListMergeCursorSafe(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	n1.reply = func(path string) (int, string) {
		return 200, `{"sessions":["a","c"],"live":["a"],"degraded":[],"next":"c"}`
	}
	n2.reply = func(path string) (int, string) {
		return 200, `{"sessions":["b","d"],"live":[],"degraded":["d"]}`
	}
	_, front := newTestRouter(t, n1, n2)

	resp, err := http.Get(front.URL + "/v1/sessions?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Sessions []string `json:"sessions"`
		Live     []string `json:"live"`
		Degraded []string `json:"degraded"`
		Next     string   `json:"next"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// n1 truncated at "c": "d" must be dropped (n1 may own unseen ids
	// before it), then limit=2 truncates to [a b] with cursor b.
	want := []string{"a", "b"}
	if len(out.Sessions) != 2 || out.Sessions[0] != want[0] || out.Sessions[1] != want[1] {
		t.Fatalf("merged sessions = %v, want %v", out.Sessions, want)
	}
	if out.Next != "b" {
		t.Fatalf("next = %q, want b", out.Next)
	}
	if len(out.Live) != 1 || len(out.Degraded) != 1 {
		t.Fatalf("live=%v degraded=%v, want unions", out.Live, out.Degraded)
	}
}

// The router's readyz reflects whether anything is routable.
func TestRouterReadyz(t *testing.T) {
	n1 := newFakeNode(t, "n1")
	rt, front := newTestRouter(t, n1)
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with a live node = %d", resp.StatusCode)
	}
	n1.srv.Close()
	if err := rt.Refresh(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no nodes = %d, want 503", resp.StatusCode)
	}
}

// A list fan-out with any node unreachable must answer a retryable 503,
// not a silently partial 200 (the dead node's sessions would otherwise
// be indistinguishable from deleted ones).
func TestListPartialFailureIs503(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	n2.reply = func(path string) (int, string) {
		return 200, `{"sessions":["b"],"live":[],"degraded":[]}`
	}
	rt, front := newTestRouter(t, n1, n2)
	// Killed AFTER the refresh, so the router still fans out to n1.
	n1.srv.Close()

	resp, err := http.Get(front.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("partial list = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("partial-list 503 missing Retry-After hint")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	if env.Error.Code != "partial_listing" {
		t.Fatalf("error code %q, want partial_listing", env.Error.Code)
	}
	if rt.Metrics().PartialLists != 1 {
		t.Fatalf("partial_lists = %d, want 1", rt.Metrics().PartialLists)
	}
}

// Create failover through a lost response: the create commits on the
// owner but the reply is lost, the replay on the successor answers 409
// session_exists, and the router must recover the existing session as a
// 200 instead of surfacing a conflict the client never caused.
func TestCreateFailover409RecoversSession(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	ring := cluster.BuildRing([]string{"n1", "n2"}, cluster.DefaultVirtualNodes)
	id := "alpha"
	for i := 0; ; i++ {
		if owner, _ := ring.Owner(id); owner == "n1" {
			break
		}
		id = "alpha" + strings.Repeat("x", i+1)
	}
	// The successor: replayed create conflicts, but the info GET succeeds.
	n2.reply = func(path string) (int, string) {
		if path == "/v1/sessions" {
			return http.StatusConflict, `{"error":{"code":"session_exists","message":"dup"}}`
		}
		return http.StatusOK, `{"id":"` + id + `","domain":"cnf"}`
	}
	rt, front := newTestRouter(t, n1, n2)
	// Owner dies after refresh: the create fails over to n2.
	n1.srv.Close()

	resp, err := http.Post(front.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"id":"`+id+`","domain":"cnf"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover create landing on 409 = %d, want recovered 200", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID != id {
		t.Fatalf("recovered body id=%q err=%v, want the existing session %q", out.ID, err, id)
	}
	if rt.Metrics().ConflictRecoveries != 1 {
		t.Fatalf("conflict_recoveries = %d, want 1", rt.Metrics().ConflictRecoveries)
	}
}

// A FIRST-attempt 409 is a genuine duplicate id chosen by the client and
// must stay a 409.
func TestCreateFirstAttempt409Relayed(t *testing.T) {
	n1, n2 := newFakeNode(t, "n1"), newFakeNode(t, "n2")
	for _, n := range []*fakeNode{n1, n2} {
		n.reply = func(path string) (int, string) {
			if path == "/v1/sessions" {
				return http.StatusConflict, `{"error":{"code":"session_exists","message":"dup"}}`
			}
			return http.StatusOK, `{}`
		}
	}
	rt, front := newTestRouter(t, n1, n2)

	resp, err := http.Post(front.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"id":"dup-id","domain":"cnf"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("first-attempt duplicate = %d, want 409 relayed", resp.StatusCode)
	}
	if rt.Metrics().ConflictRecoveries != 0 {
		t.Fatal("a genuine duplicate was miscounted as a conflict recovery")
	}
}

// The metrics and list fan-outs run inside a client request; when that
// client disconnects, the upstream node requests must be cancelled too,
// not keep running on a detached context.
func TestFanoutThreadsRequestContext(t *testing.T) {
	for _, path := range []string{"/v1/metrics", "/v1/sessions"} {
		t.Run(path, func(t *testing.T) {
			sawCancel := make(chan bool, 4)
			up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/readyz" {
					w.Write([]byte(`{"ready":true}`))
					return
				}
				select {
				case <-r.Context().Done():
					sawCancel <- true
				case <-time.After(5 * time.Second):
					sawCancel <- false
				}
			}))
			defer up.Close()

			st := store.NewMemory()
			members := cluster.NewMembership(st)
			if err := members.Heartbeat("n1", up.URL, time.Minute, time.Now()); err != nil {
				t.Fatal(err)
			}
			rt, err := New(Options{Store: st, Refresh: time.Hour, Retries: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Refresh(); err != nil {
				t.Fatal(err)
			}
			front := httptest.NewServer(rt.Handler())
			defer front.Close()

			ctx, cancel := context.WithCancel(context.Background())
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, front.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				close(done)
			}()
			time.Sleep(50 * time.Millisecond) // let the fan-out reach the upstream
			cancel()
			if !<-sawCancel {
				t.Fatal("upstream fan-out request was not cancelled with the client request")
			}
			<-done
		})
	}
}
