// Package router implements the stateless cluster front door for a fleet
// of ecserve nodes (command ecrouter wraps it). It keeps NO session
// state of its own: membership comes from the shared store's heartbeat
// records, placement from the same consistent-hash ring every node
// agrees on (internal/cluster.Ring), and correctness under stale views
// from the servers' lease fencing — the worst a misrouted request gets
// is a retryable 503 "not_owner", never a double commit.
//
// Routing rules:
//
//   - /v1/sessions/{id}... is consistent-hashed on the session id and
//     proxied to the ring owner among live, ready nodes;
//   - idempotent methods (GET, DELETE) fail over to ring successors on
//     transport errors, marking the unreachable node suspect;
//   - non-idempotent methods (POST changes/solve) are never replayed by
//     the router — a transport failure answers 502 + Retry-After and the
//     client retries, by which time the ring has converged;
//   - POST /v1/sessions mints a session id when the client did not send
//     one, so the create itself can be consistent-hashed; create is
//     retried on successors because the injected id makes replays safe
//     (a duplicate lands on 409 session_exists);
//   - GET /v1/sessions merges the per-node pages (k-way, cursor-safe);
//     GET /v1/metrics returns the router's counters plus every node's;
//     GET /v1/cluster exposes the membership/ring view for operators.
//
// Readiness, not liveness, drives placement: nodes are probed on
// /readyz each refresh, so a draining or store-quarantined node stops
// receiving new placements while it still answers in-flight work.
package router

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/obs"
	"ilpec/internal/store"
)

// maxBody mirrors the ecserve request cap: the router buffers bodies to
// make retries replayable, so it enforces the same bound up front.
const maxBody = 8 << 20

// Options configures a Router.
type Options struct {
	// Store is the cluster's shared store; the router only reads the
	// membership heartbeat records from it. The caller owns its lifecycle.
	Store store.Store
	// VirtualNodes is the ring's vnode count per node
	// (0 = cluster.DefaultVirtualNodes). Every router and every node must
	// agree on this number or placements diverge.
	VirtualNodes int
	// Refresh is the membership poll + health probe cadence (0 = 1s).
	Refresh time.Duration
	// ProbeTimeout bounds one /readyz probe (0 = 2s).
	ProbeTimeout time.Duration
	// Retries is how many ring successors are tried after the owner for
	// idempotent requests (0 = 2, negative = none).
	Retries int
	// HTTP is the proxy transport (nil = a client with sane timeouts).
	HTTP *http.Client
	// Logger receives membership transitions (nil = discard).
	Logger *log.Logger
	// Now is the clock used against heartbeat TTLs (nil = time.Now).
	Now func() time.Time
	// Obs receives the router's instruments: per-route request latency,
	// per-node proxy attempt latency, and request counters, exposed at
	// GET /metrics. nil gets a private registry.
	Obs *obs.Registry
	// SlowTraceThreshold is the minimum request duration retained in the
	// /v1/debug/traces ring (default 250ms).
	SlowTraceThreshold time.Duration
}

// Metrics are the router's own counters (snapshot via Router.Metrics).
type Metrics struct {
	Refreshes    int64 `json:"refreshes"`
	Proxied      int64 `json:"proxied"`
	Failovers    int64 `json:"failovers"`
	Suspected    int64 `json:"suspected"`
	MintedIDs    int64 `json:"minted_ids"`
	NoReadyNodes int64 `json:"no_ready_nodes"`
	// PartialLists counts GET /v1/sessions fan-outs rejected with 503
	// because at least one ready node could not be listed.
	PartialLists int64 `json:"partial_lists"`
	// ConflictRecoveries counts create failovers where a replayed
	// create-with-id hit 409 and the router recovered the existing
	// session instead of surfacing the conflict.
	ConflictRecoveries int64 `json:"conflict_recoveries"`
}

// Router is the reverse proxy. Create with New, drive membership either
// with Start/Stop (background loop) or explicit Refresh calls (tests).
type Router struct {
	opts    Options
	members *cluster.Membership

	mu       sync.RWMutex
	ring     *cluster.Ring
	addrs    map[string]string // node id -> base URL, ready nodes only
	suspects map[string]bool   // unreachable since the last refresh

	refreshes    atomic.Int64
	proxied      atomic.Int64
	failovers    atomic.Int64
	suspected    atomic.Int64
	mintedIDs    atomic.Int64
	noReadyNodes atomic.Int64
	partialLists atomic.Int64
	conflictRecs atomic.Int64

	// reg and traces back the /metrics exposition and the slow-trace
	// ring (see obs.go). Never nil after New.
	reg    *obs.Registry
	traces *obs.TraceRing

	stop chan struct{}
	done chan struct{}
}

// New builds a Router over the shared store. Call Start (or Refresh) to
// populate the ring before serving.
func New(opts Options) (*Router, error) {
	if opts.Store == nil {
		return nil, errors.New("router: Options.Store is required")
	}
	if opts.VirtualNodes == 0 {
		opts.VirtualNodes = cluster.DefaultVirtualNodes
	}
	if opts.Refresh <= 0 {
		opts.Refresh = time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.HTTP == nil {
		opts.HTTP = &http.Client{Timeout: 5 * time.Minute}
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	slow := opts.SlowTraceThreshold
	if slow <= 0 {
		slow = defaultSlowTrace
	}
	return &Router{
		opts:     opts,
		members:  cluster.NewMembership(opts.Store),
		ring:     cluster.BuildRing(nil, opts.VirtualNodes),
		addrs:    map[string]string{},
		suspects: map[string]bool{},
		reg:      opts.Obs,
		traces:   obs.NewTraceRing(defaultTraceRingSize, slow),
	}, nil
}

// Start runs one synchronous refresh (so the first request already has a
// ring) and then polls membership until Stop.
func (rt *Router) Start() error {
	if err := rt.Refresh(); err != nil {
		return err
	}
	rt.stop = make(chan struct{})
	rt.done = make(chan struct{})
	go rt.loop()
	return nil
}

// Stop halts the refresh loop.
func (rt *Router) Stop() {
	if rt.stop == nil {
		return
	}
	close(rt.stop)
	<-rt.done
	rt.stop = nil
}

func (rt *Router) loop() {
	defer close(rt.done)
	ticker := time.NewTicker(rt.opts.Refresh)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			if err := rt.Refresh(); err != nil {
				rt.opts.Logger.Printf("membership refresh: %v", err)
			}
		}
	}
}

// Refresh re-reads membership and probes every live node's /readyz,
// rebuilding the ring from the nodes that answered ready. A node that
// passes its probe sheds any suspect mark.
func (rt *Router) Refresh() error {
	rt.refreshes.Add(1)
	infos, err := rt.members.Alive(rt.opts.Now())
	if err != nil {
		return err
	}
	type probe struct {
		info  cluster.NodeInfo
		ready bool
	}
	probes := make([]probe, len(infos))
	var wg sync.WaitGroup
	for i, info := range infos {
		wg.Add(1)
		go func(i int, info cluster.NodeInfo) {
			defer wg.Done()
			probes[i] = probe{info: info, ready: rt.probeReady(info.Addr)}
		}(i, info)
	}
	wg.Wait()

	ready := make([]string, 0, len(probes))
	addrs := make(map[string]string, len(probes))
	for _, p := range probes {
		if p.ready {
			ready = append(ready, p.info.ID)
			addrs[p.info.ID] = p.info.Addr
		}
	}
	sort.Strings(ready)

	rt.mu.Lock()
	prev := rt.ring.Nodes()
	for _, id := range ready {
		delete(rt.suspects, id) // probe succeeded: reachable again
	}
	rt.ring = cluster.BuildRing(ready, rt.opts.VirtualNodes)
	rt.addrs = addrs
	rt.mu.Unlock()
	if fmt.Sprint(prev) != fmt.Sprint(ready) {
		rt.opts.Logger.Printf("ring now %v (was %v)", ready, prev)
	}
	return nil
}

func (rt *Router) probeReady(addr string) bool {
	if addr == "" {
		return false
	}
	client := &http.Client{Timeout: rt.opts.ProbeTimeout, Transport: rt.opts.HTTP.Transport}
	resp, err := client.Get(addr + "/readyz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Metrics snapshots the router counters.
func (rt *Router) Metrics() Metrics {
	return Metrics{
		Refreshes:          rt.refreshes.Load(),
		Proxied:            rt.proxied.Load(),
		Failovers:          rt.failovers.Load(),
		Suspected:          rt.suspected.Load(),
		MintedIDs:          rt.mintedIDs.Load(),
		NoReadyNodes:       rt.noReadyNodes.Load(),
		PartialLists:       rt.partialLists.Load(),
		ConflictRecoveries: rt.conflictRecs.Load(),
	}
}

// candidates returns the proxy targets for a session id: the ring owner
// first, then up to Retries successors, suspects filtered out (unless
// that would leave nothing — a suspect beats an instant 503).
func (rt *Router) candidates(id string) []string {
	n := 1
	if rt.opts.Retries > 0 {
		n += rt.opts.Retries
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	all := rt.ring.Successors(id, n)
	fresh := make([]string, 0, len(all))
	for _, node := range all {
		if !rt.suspects[node] {
			fresh = append(fresh, node)
		}
	}
	if len(fresh) == 0 {
		fresh = all
	}
	return fresh
}

func (rt *Router) addrOf(node string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.addrs[node]
}

func (rt *Router) markSuspect(node string) {
	rt.mu.Lock()
	if !rt.suspects[node] {
		rt.suspects[node] = true
		rt.suspected.Add(1)
	}
	rt.mu.Unlock()
}

func (rt *Router) readyNodes() (ids []string, addrs map[string]string) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	addrs = make(map[string]string, len(rt.addrs))
	for id, addr := range rt.addrs {
		if !rt.suspects[id] {
			ids = append(ids, id)
			addrs[id] = addr
		}
	}
	sort.Strings(ids)
	return ids, addrs
}

// ---- HTTP ------------------------------------------------------------------

// Handler returns the router's HTTP surface: the ecserve API proxied by
// session placement, plus /v1/cluster and the router's own probes.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ids, _ := rt.readyNodes(); len(ids) == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "no_ready_nodes"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	mux.HandleFunc("GET /metrics", rt.handleProm)
	mux.HandleFunc("GET /v1/debug/traces", rt.handleDebugTraces)
	mux.HandleFunc("GET /v1/domains", rt.handleAny)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)
	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{op}", rt.handleSession)
	return rt.instrument(mux)
}

// handleCluster reports the operator view: every live heartbeat plus
// whether the router currently routes to it.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	infos, err := rt.members.Alive(rt.opts.Now())
	if err != nil {
		writeRouterError(w, http.StatusServiceUnavailable, "membership_unavailable", err, true)
		return
	}
	_, addrs := rt.readyNodes()
	nodes := make([]map[string]any, 0, len(infos))
	for _, info := range infos {
		_, routed := addrs[info.ID]
		nodes = append(nodes, map[string]any{
			"id":     info.ID,
			"addr":   info.Addr,
			"ready":  routed,
			"expiry": info.Expiry,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": nodes, "ring_nodes": len(addrs)})
}

// handleMetrics merges the router's counters with every ready node's
// /v1/metrics, keyed by node id.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ids, addrs := rt.readyNodes()
	perNode := make(map[string]json.RawMessage, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id, addr string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, addr+"/v1/metrics", nil)
			if err != nil {
				return
			}
			resp, err := rt.opts.HTTP.Do(req)
			if err != nil {
				return
			}
			data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(data) {
				return
			}
			mu.Lock()
			perNode[id] = data
			mu.Unlock()
		}(id, addrs[id])
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"router": rt.Metrics(), "nodes": perNode})
}

// handleAny proxies a read to any ready node (domain registry is
// identical fleet-wide).
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	ids, addrs := rt.readyNodes()
	for _, id := range ids {
		if rt.forward(w, r, id, addrs[id], nil) {
			return
		}
	}
	rt.noReadyNodes.Add(1)
	writeRouterError(w, http.StatusServiceUnavailable, "no_ready_nodes", errors.New("no ready nodes"), true)
}

// listResponse is the slice of the node list body the merge needs.
type listResponse struct {
	Sessions []string `json:"sessions"`
	Live     []string `json:"live"`
	Degraded []string `json:"degraded"`
	Next     string   `json:"next"`
}

// handleList fans GET /v1/sessions out to every ready node and k-way
// merges the pages. Cursor safety: if any node truncated its page, ids
// past the smallest per-node cursor are dropped (that node might own
// unseen ids below them), and the merged cursor is re-emitted from the
// merged page.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	ids, addrs := rt.readyNodes()
	if len(ids) == 0 {
		rt.noReadyNodes.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "no_ready_nodes", errors.New("no ready nodes"), true)
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			writeRouterError(w, http.StatusBadRequest, "bad_limit", fmt.Errorf("bad limit %q", raw), false)
			return
		}
		limit = parsed
	}
	type result struct {
		resp listResponse
		ok   bool
	}
	results := make([]result, len(ids))
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			u := addr + "/v1/sessions"
			if q := r.URL.RawQuery; q != "" {
				u += "?" + q
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
			if err != nil {
				return
			}
			resp, err := rt.opts.HTTP.Do(req)
			if err != nil {
				return
			}
			data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			if json.Unmarshal(data, &results[i].resp) == nil {
				results[i].ok = true
			}
		}(i, addrs[ids[i]])
	}
	wg.Wait()

	sessions := map[string]bool{}
	liveSet := map[string]bool{}
	degradedSet := map[string]bool{}
	bound := "" // smallest cursor among truncated nodes
	failed := 0
	for _, res := range results {
		if !res.ok {
			failed++
			continue
		}
		for _, id := range res.resp.Sessions {
			sessions[id] = true
		}
		for _, id := range res.resp.Live {
			liveSet[id] = true
		}
		for _, id := range res.resp.Degraded {
			degradedSet[id] = true
		}
		if res.resp.Next != "" && (bound == "" || res.resp.Next < bound) {
			bound = res.resp.Next
		}
	}
	if failed > 0 {
		// A partial merge is worse than an error: the failed node's
		// sessions would be silently absent, indistinguishable from deleted
		// ones. Retryable — by the next attempt the refresh loop has
		// dropped (or re-probed) the unreachable node.
		rt.partialLists.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "partial_listing",
			fmt.Errorf("%d of %d node list requests failed", failed, len(ids)), true)
		return
	}
	merged := setToSorted(sessions)
	next := ""
	if bound != "" {
		cut := sort.SearchStrings(merged, bound)
		if cut < len(merged) && merged[cut] == bound {
			cut++
		}
		merged = merged[:cut]
		next = bound
	}
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
		next = merged[len(merged)-1]
	}
	out := map[string]any{
		"sessions": merged,
		"live":     setToSorted(liveSet),
		"degraded": setToSorted(degradedSet),
	}
	if next != "" {
		out["next"] = next
	}
	writeJSON(w, http.StatusOK, out)
}

func setToSorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// handleCreate consistent-hashes a create onto the owner of its session
// id, minting one when the client did not choose. The injected id makes
// the create idempotent, so transport failures fail over to successors.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, "body_too_large", err, false)
		return
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		writeRouterError(w, http.StatusBadRequest, "bad_json", err, false)
		return
	}
	id := ""
	if raw, ok := fields["id"]; ok {
		if json.Unmarshal(raw, &id) != nil || id == "" {
			writeRouterError(w, http.StatusBadRequest, "bad_id", errors.New("id must be a non-empty string"), false)
			return
		}
	} else {
		id = mintID()
		fields["id"] = json.RawMessage(strconv.Quote(id))
		if body, err = json.Marshal(fields); err != nil {
			writeRouterError(w, http.StatusInternalServerError, "encode_failed", err, false)
			return
		}
		rt.mintedIDs.Add(1)
	}
	rt.proxyCreate(w, r, id, body)
}

// proxyCreate forwards a create to the id's candidates in ring order.
// The injected id makes creates replay-safe, with one wrinkle: when an
// attempt's response is lost after the create committed, the replay on
// the next candidate lands 409. On a failover attempt that conflict
// means "already created", so the router recovers the existing session
// and answers 200 instead of surfacing an error the client never
// caused. A first-attempt 409 (a genuinely duplicate id) still relays
// as 409.
func (rt *Router) proxyCreate(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	cands := rt.candidates(id)
	if len(cands) == 0 {
		rt.noReadyNodes.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "no_ready_nodes", errors.New("no ready nodes"), true)
		return
	}
	for i, node := range cands {
		addr := rt.addrOf(node)
		if addr == "" {
			continue
		}
		if i > 0 {
			rt.failovers.Add(1)
		}
		resp := rt.try(r, node, addr, body)
		if resp == nil {
			continue
		}
		rt.proxied.Add(1)
		if i > 0 && resp.StatusCode == http.StatusConflict {
			if got := rt.fetchSession(r.Context(), id); got != nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				rt.conflictRecs.Add(1)
				relay(w, got)
				return
			}
		}
		relay(w, resp)
		return
	}
	writeRouterError(w, http.StatusBadGateway, "upstream_unreachable",
		errors.New("every candidate node unreachable"), true)
}

// fetchSession GETs /v1/sessions/{id} through the id's candidates and
// returns the first 200 response (the caller owns its Body), or nil if
// no candidate can produce the session.
func (rt *Router) fetchSession(ctx context.Context, id string) *http.Response {
	greq, err := http.NewRequestWithContext(ctx, http.MethodGet, "/v1/sessions/"+id, nil)
	if err != nil {
		return nil
	}
	for _, node := range rt.candidates(id) {
		addr := rt.addrOf(node)
		if addr == "" {
			continue
		}
		resp := rt.try(greq, node, addr, nil)
		if resp == nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return resp
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	return nil
}

// handleSession routes everything under /v1/sessions/{id} by ring
// placement. GETs and DELETEs fail over across successors; POSTs
// (changes, solve) are delivered at most once by the router and answer
// 502 + Retry-After on transport failure.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet && r.Method != http.MethodHead {
		var err error
		if body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
			writeRouterError(w, http.StatusRequestEntityTooLarge, "body_too_large", err, false)
			return
		}
	}
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead || r.Method == http.MethodDelete
	rt.proxy(w, r, id, body, idempotent)
}

// proxy forwards to the id's candidates in ring order. retry=false stops
// after the first transport failure (non-idempotent request bodies must
// not be replayed across nodes).
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, id string, body []byte, retry bool) {
	cands := rt.candidates(id)
	if len(cands) == 0 {
		rt.noReadyNodes.Add(1)
		writeRouterError(w, http.StatusServiceUnavailable, "no_ready_nodes", errors.New("no ready nodes"), true)
		return
	}
	for i, node := range cands {
		addr := rt.addrOf(node)
		if addr == "" {
			continue
		}
		if i > 0 {
			rt.failovers.Add(1)
		}
		if rt.forward(w, r, node, addr, body) {
			return
		}
		if !retry {
			writeRouterError(w, http.StatusBadGateway, "upstream_unreachable",
				fmt.Errorf("node %s unreachable; request not replayed", node), true)
			return
		}
	}
	writeRouterError(w, http.StatusBadGateway, "upstream_unreachable",
		errors.New("every candidate node unreachable"), true)
}

// forward sends one upstream attempt and, on any HTTP response at all,
// relays it verbatim (status, JSON body, Retry-After) and reports true.
// A transport error marks the node suspect and reports false — the
// caller decides whether failing over is safe.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, node, addr string, body []byte) bool {
	resp := rt.try(r, node, addr, body)
	if resp == nil {
		return false
	}
	rt.proxied.Add(1)
	relay(w, resp)
	return true
}

// try sends one upstream attempt and returns the response, or nil on a
// transport error (the node is marked suspect). Callers that get a
// response own its Body — relay closes it.
func (rt *Router) try(r *http.Request, node, addr string, body []byte) *http.Response {
	u := addr + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		u += "?" + q
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil
	}
	// Idempotency-Key must survive the proxy hop: the server dedupes
	// replayed change batches by it, which is what makes the CLIENT's
	// retries through 502s safe even though the router itself never
	// replays non-idempotent requests. X-Request-ID ties the two tiers'
	// logs together, and X-EC-Trace asks the node for its span tree (the
	// router grafts it under its own; see obs.go).
	for _, h := range []string{"Content-Type", "Idempotency-Key", "X-Request-ID", "X-EC-Trace"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	_, sp := obs.StartSpan(r.Context(), "proxy "+node)
	sp.SetAttr("node", node)
	start := time.Now()
	resp, err := rt.opts.HTTP.Do(req)
	rt.reg.Histogram("ec_router_proxy_seconds", "Upstream proxy attempt latency by node (seconds).",
		obs.Label{Key: "node", Value: node}).Observe(time.Since(start))
	if err != nil {
		sp.SetAttr("error", "transport")
		sp.End()
		if r.Context().Err() == nil {
			rt.markSuspect(node)
		}
		return nil
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	sp.End()
	return resp
}

// relay writes one upstream response downstream verbatim (status, JSON
// body, the headers clients act on). It closes resp.Body.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxBody))
}

// mintID returns a random router-minted session id. Random (not
// sequential) so concurrent routers cannot collide and ids spread evenly
// over the ring.
func mintID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("router: crypto/rand failed: %v", err))
	}
	return "r-" + hex.EncodeToString(buf[:])
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeRouterError mirrors the ecserve error envelope so clients see one
// error shape end to end; retryable adds the Retry-After hint.
func writeRouterError(w http.ResponseWriter, status int, code string, err error, retryable bool) {
	if retryable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{
		"error": map[string]any{"code": code, "message": err.Error()},
	})
}
