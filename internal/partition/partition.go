// Package partition applies the EC methodology to min-cut netlist
// partitioning — the classic physical-design task of splitting a netlist
// graph into balanced blocks while minimizing the weight of cut edges.
// It is the fourth domain behind the generic EC engine and exists to
// prove the domain interface carries a genuinely new scenario: the
// package ships no bespoke EC entry points at all, only the ILP
// substrate and the domain.Domain adapter (domain.go).
//
// The ILP uses x_{v,b} one-hot block-assignment variables, per-block
// balance rows (L ≤ Σ_v x_{v,b} ≤ U), and a cut indicator y_e per edge
// with y_e ≥ x_{u,b} - x_{v,b} for every block, so y_e = 1 exactly when
// the endpoints land in different blocks. The objective minimizes
// Σ w_e·y_e.
//
// EC arrives as netlist edits — edge additions/removals, new vertices,
// and balance-bound changes; the triad adapts as usual:
//
//   - enabling EC: prefer partitions where vertices keep a spare block
//     with size headroom, so future moves stay local;
//   - fast EC: re-place only the vertices that violate balance or are
//     unplaced, with the rest frozen;
//   - preserving EC: maximize the number of vertices keeping their block.
package partition

import (
	"fmt"
	"sort"

	"ilpec/internal/ilp"
)

// Edge is a weighted undirected netlist edge.
type Edge struct {
	U, V int
	W    float64
}

// Problem is a partitioning instance over vertices 1..N.
type Problem struct {
	// N is the vertex count.
	N int
	// Blocks is the number of blocks (≥ 1), identified 1..Blocks.
	Blocks int
	// MinSize/MaxSize bound every block's vertex count. MaxSize 0 means
	// ⌈N/Blocks⌉ (perfect balance up to rounding); MinSize 0 means no
	// lower bound.
	MinSize, MaxSize int
	// Edges is the weighted edge list (weight 0 counts as 1).
	Edges []Edge
}

// NewProblem creates a partitioning problem with n vertices and b blocks.
func NewProblem(n, b int) *Problem {
	return &Problem{N: n, Blocks: b}
}

// AddEdge appends a weighted edge.
func (p *Problem) AddEdge(u, v int, w float64) {
	p.Edges = append(p.Edges, Edge{U: u, V: v, W: w})
}

// Clone returns a deep copy.
func (p *Problem) Clone() *Problem {
	out := *p
	out.Edges = append([]Edge(nil), p.Edges...)
	return &out
}

// maxSize resolves the effective per-block upper bound.
func (p *Problem) maxSize() int {
	if p.MaxSize > 0 {
		return p.MaxSize
	}
	if p.Blocks < 1 {
		return p.N
	}
	return (p.N + p.Blocks - 1) / p.Blocks
}

// Validate checks structural consistency and arithmetic feasibility of
// the balance bounds.
func (p *Problem) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("partition: negative vertex count")
	}
	if p.Blocks < 1 {
		return fmt.Errorf("partition: need ≥ 1 block, have %d", p.Blocks)
	}
	if p.MinSize < 0 || (p.MaxSize > 0 && p.MaxSize < p.MinSize) {
		return fmt.Errorf("partition: bad size bounds [%d,%d]", p.MinSize, p.MaxSize)
	}
	if p.maxSize()*p.Blocks < p.N {
		return fmt.Errorf("partition: %d blocks of ≤ %d vertices cannot hold %d", p.Blocks, p.maxSize(), p.N)
	}
	if p.MinSize*p.Blocks > p.N {
		return fmt.Errorf("partition: %d blocks of ≥ %d vertices exceed %d", p.Blocks, p.MinSize, p.N)
	}
	for i, e := range p.Edges {
		if e.U == e.V || e.U < 1 || e.V < 1 || e.U > p.N || e.V > p.N {
			return fmt.Errorf("partition: edge %d (%d,%d) out of range", i, e.U, e.V)
		}
		if e.W < 0 {
			return fmt.Errorf("partition: edge %d has negative weight", i)
		}
	}
	return nil
}

// Neighbors returns the sorted neighbor set of v.
func (p *Problem) Neighbors(v int) []int {
	seen := map[int]bool{}
	for _, e := range p.Edges {
		if e.U == v {
			seen[e.V] = true
		}
		if e.V == v {
			seen[e.U] = true
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Assignment maps each vertex (1-based; index 0 unused) to a block in
// 1..Blocks (0 = unplaced).
type Assignment []int

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// BlockSizes tallies the vertices per block (index 0 counts unplaced).
func (a Assignment) BlockSizes(p *Problem) []int {
	sizes := make([]int, p.Blocks+1)
	for v := 1; v <= p.N && v < len(a); v++ {
		b := a[v]
		if b >= 1 && b <= p.Blocks {
			sizes[b]++
		} else {
			sizes[0]++
		}
	}
	if p.N >= len(a) {
		sizes[0] += p.N - len(a) + 1
	}
	return sizes
}

// Valid reports whether every vertex is placed and every block is within
// the balance bounds.
func (a Assignment) Valid(p *Problem) bool {
	sizes := a.BlockSizes(p)
	if sizes[0] > 0 {
		return false
	}
	for b := 1; b <= p.Blocks; b++ {
		if sizes[b] > p.maxSize() || sizes[b] < p.MinSize {
			return false
		}
	}
	return true
}

// CutWeight sums the weights of edges whose endpoints are in different
// blocks (weight 0 counts as 1).
func (a Assignment) CutWeight(p *Problem) float64 {
	total := 0.0
	for _, e := range p.Edges {
		if e.U < len(a) && e.V < len(a) && a[e.U] != a[e.V] {
			total += edgeWeight(e)
		}
	}
	return total
}

// Agreement returns the fraction of a's placed vertices kept by other.
func (a Assignment) Agreement(other Assignment) float64 {
	placed, same := 0, 0
	for v := 1; v < len(a); v++ {
		if a[v] < 1 {
			continue
		}
		placed++
		if v < len(other) && other[v] == a[v] {
			same++
		}
	}
	if placed == 0 {
		return 1
	}
	return float64(same) / float64(placed)
}

func edgeWeight(e Edge) float64 {
	if e.W <= 0 {
		return 1
	}
	return e.W
}

// Encoding is the min-cut partitioning 0-1 ILP.
type Encoding struct {
	Model   *ilp.Model
	Problem *Problem
	// xCol[v][b-1] is the column of x_{v,b}.
	xCol [][]int
	// yCol[i] is the cut indicator of edge i.
	yCol []int
}

// XCol returns the column of x_{v,b} (1-based vertex and block).
func (e *Encoding) XCol(v, b int) int { return e.xCol[v][b-1] }

// NewEncoding builds the ILP: one-hot rows per vertex, balance rows per
// block, and cut-indicator rows per (edge, block) pair, minimizing the
// weighted cut.
func NewEncoding(p *Problem) *Encoding {
	m := ilp.NewModel(false) // minimize cut weight
	e := &Encoding{Model: m, Problem: p,
		xCol: make([][]int, p.N+1), yCol: make([]int, len(p.Edges))}
	for v := 1; v <= p.N; v++ {
		e.xCol[v] = make([]int, p.Blocks)
		for b := 1; b <= p.Blocks; b++ {
			e.xCol[v][b-1] = m.AddVar(fmt.Sprintf("x%d_%d", v, b), 0)
		}
	}
	for i, ed := range p.Edges {
		e.yCol[i] = m.AddVar(fmt.Sprintf("y%d", i), edgeWeight(ed))
	}
	// Exactly one block per vertex.
	for v := 1; v <= p.N; v++ {
		coefs := make([]ilp.Coef, p.Blocks)
		for b := 1; b <= p.Blocks; b++ {
			coefs[b-1] = ilp.Coef{Var: e.XCol(v, b), Val: 1}
		}
		m.AddRow(fmt.Sprintf("one_%d", v), coefs, ilp.EQ, 1)
	}
	// Balance rows.
	for b := 1; b <= p.Blocks; b++ {
		coefs := make([]ilp.Coef, p.N)
		for v := 1; v <= p.N; v++ {
			coefs[v-1] = ilp.Coef{Var: e.XCol(v, b), Val: 1}
		}
		m.AddRow(fmt.Sprintf("cap_%d", b), coefs, ilp.LE, float64(p.maxSize()))
		if p.MinSize > 0 {
			m.AddRow(fmt.Sprintf("floor_%d", b), coefs, ilp.GE, float64(p.MinSize))
		}
	}
	// Cut indicators: y_e ≥ x_{u,b} - x_{v,b} (both directions, per block).
	for i, ed := range p.Edges {
		for b := 1; b <= p.Blocks; b++ {
			m.AddRow("", []ilp.Coef{
				{Var: e.yCol[i], Val: 1}, {Var: e.XCol(ed.U, b), Val: -1}, {Var: e.XCol(ed.V, b), Val: 1},
			}, ilp.GE, 0)
			m.AddRow("", []ilp.Coef{
				{Var: e.yCol[i], Val: 1}, {Var: e.XCol(ed.V, b), Val: -1}, {Var: e.XCol(ed.U, b), Val: 1},
			}, ilp.GE, 0)
		}
	}
	return e
}

// Decode converts an ILP solution to an Assignment.
func (e *Encoding) Decode(sol ilp.Solution) Assignment {
	a := make(Assignment, e.Problem.N+1)
	for v := 1; v <= e.Problem.N; v++ {
		for b := 1; b <= e.Problem.Blocks; b++ {
			if sol[e.XCol(v, b)] == 1 {
				a[v] = b
				break
			}
		}
	}
	return a
}

// EncodeAssignment converts an assignment into an ILP solution vector
// (cut indicators are set consistently so warm starts can be adopted).
func (e *Encoding) EncodeAssignment(a Assignment) ilp.Solution {
	sol := make(ilp.Solution, e.Model.NumVars())
	for v := 1; v <= e.Problem.N && v < len(a); v++ {
		if b := a[v]; b >= 1 && b <= e.Problem.Blocks {
			sol[e.XCol(v, b)] = 1
		}
	}
	for i, ed := range e.Problem.Edges {
		if ed.U < len(a) && ed.V < len(a) && a[ed.U] != a[ed.V] {
			sol[e.yCol[i]] = 1
		}
	}
	return sol
}

// Greedy builds a balanced starting partition: vertices in index order go
// to the least-loaded block with headroom, preferring the block where
// most already-placed neighbors live.
func Greedy(p *Problem) Assignment {
	a := make(Assignment, p.N+1)
	sizes := make([]int, p.Blocks+1)
	for v := 1; v <= p.N; v++ {
		best, bestScore := 0, -1<<30
		for b := 1; b <= p.Blocks; b++ {
			if sizes[b] >= p.maxSize() {
				continue
			}
			score := -sizes[b]
			for _, u := range p.Neighbors(v) {
				if a[u] == b {
					score += 4 // keep nets together
				}
			}
			if score > bestScore {
				best, bestScore = b, score
			}
		}
		if best == 0 {
			best = 1 + (v-1)%p.Blocks // bounds infeasible; round-robin
		}
		a[v] = best
		sizes[best]++
	}
	return a
}
