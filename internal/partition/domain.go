package partition

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// Change is one netlist specification change.
type Change struct {
	// Kind is "add-edge", "remove-edge", "add-vertex", or "set-bounds".
	Kind string `json:"kind"`
	U    int    `json:"u,omitempty"`
	V    int    `json:"v,omitempty"`
	// Weight is the edge weight of add-edge (0 = unit).
	Weight float64 `json:"weight,omitempty"`
	// Min/Max are the new balance bounds of set-bounds. The change
	// REPLACES both bounds: an omitted field resets that bound to its
	// default (no floor / auto ⌈N/Blocks⌉ cap).
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
}

// Domain returns the min-cut partitioning domain adapter.
func Domain() domain.Domain { return partDomain{} }

func init() { domain.Register(Domain()) }

type partDomain struct{}

func (partDomain) Name() string { return "partition" }

func (partDomain) problem(p any) (*Problem, error) {
	pp, ok := p.(*Problem)
	if !ok || pp == nil {
		return nil, fmt.Errorf("partition: problem is %T, want *partition.Problem", p)
	}
	return pp, nil
}

func (partDomain) solution(s any) (Assignment, error) {
	a, ok := s.(Assignment)
	if !ok || a == nil {
		return nil, fmt.Errorf("partition: solution is %T, want partition.Assignment", s)
	}
	return a, nil
}

func (d partDomain) Validate(p any) error {
	pp, err := d.problem(p)
	if err != nil {
		return err
	}
	return pp.Validate()
}

func (d partDomain) CloneProblem(p any) any {
	pp, err := d.problem(p)
	if err != nil {
		panic(err)
	}
	return pp.Clone()
}

func (d partDomain) ProblemSize(p any) (int, int) {
	pp, err := d.problem(p)
	if err != nil {
		return 0, 0
	}
	return pp.N, len(pp.Edges)
}

// partProblemJSON is the partitioning wire form.
type partProblemJSON struct {
	Vertices int `json:"vertices"`
	Blocks   int `json:"blocks"`
	MinSize  int `json:"min_size,omitempty"`
	MaxSize  int `json:"max_size,omitempty"`
	// Edges are [u, v] or [u, v, weight] triples.
	Edges [][]float64 `json:"edges"`
}

func (d partDomain) ParseProblem(spec json.RawMessage) (any, error) {
	var req partProblemJSON
	dec := json.NewDecoder(strings.NewReader(string(spec)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("partition: bad problem: %w", err)
	}
	p := NewProblem(req.Vertices, req.Blocks)
	p.MinSize, p.MaxSize = req.MinSize, req.MaxSize
	for i, e := range req.Edges {
		if len(e) != 2 && len(e) != 3 {
			return nil, fmt.Errorf("partition: edge %d: want [u,v] or [u,v,w]", i)
		}
		w := 0.0
		if len(e) == 3 {
			w = e[2]
		}
		u, v := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(v) != e[1] {
			return nil, fmt.Errorf("partition: edge %d has non-integer endpoints", i)
		}
		p.AddEdge(u, v, w)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (d partDomain) RenderProblem(p any) any {
	pp, err := d.problem(p)
	if err != nil {
		return nil
	}
	edges := make([][]float64, len(pp.Edges))
	for i, e := range pp.Edges {
		edges[i] = []float64{float64(e.U), float64(e.V), e.W}
	}
	return partProblemJSON{
		Vertices: pp.N,
		Blocks:   pp.Blocks,
		MinSize:  pp.MinSize,
		MaxSize:  pp.MaxSize,
		Edges:    edges,
	}
}

func (d partDomain) ParseChange(spec json.RawMessage) (any, error) {
	var c Change
	if err := json.Unmarshal(spec, &c); err != nil {
		return nil, fmt.Errorf("partition: bad change: %w", err)
	}
	switch strings.ToLower(c.Kind) {
	case "add-edge", "remove-edge", "add-vertex", "set-bounds":
		c.Kind = strings.ToLower(c.Kind)
		return c, nil
	default:
		return nil, fmt.Errorf("partition: unknown kind %q", c.Kind)
	}
}

func (d partDomain) RenderChange(change any) any {
	c, ok := change.(Change)
	if !ok {
		return nil
	}
	return c
}

func (d partDomain) ApplyChanges(p any, changes []any) (any, error) {
	pp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	out := pp.Clone()
	for i, raw := range changes {
		c, ok := raw.(Change)
		if !ok {
			return nil, fmt.Errorf("partition: change %d is %T, want partition.Change", i, raw)
		}
		switch c.Kind {
		case "add-edge":
			if c.U == c.V || c.U < 1 || c.V < 1 || c.U > out.N || c.V > out.N {
				return nil, fmt.Errorf("partition: change %d: bad edge (%d,%d)", i, c.U, c.V)
			}
			if c.Weight < 0 {
				return nil, fmt.Errorf("partition: change %d: negative edge weight", i)
			}
			out.AddEdge(c.U, c.V, c.Weight)
		case "remove-edge":
			found := false
			for j, e := range out.Edges {
				if (e.U == c.U && e.V == c.V) || (e.U == c.V && e.V == c.U) {
					out.Edges = append(out.Edges[:j], out.Edges[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("partition: change %d: edge (%d,%d) absent", i, c.U, c.V)
			}
		case "add-vertex":
			out.N++
		case "set-bounds":
			out.MinSize, out.MaxSize = c.Min, c.Max
		default:
			return nil, fmt.Errorf("partition: change %d has unknown kind %q", i, c.Kind)
		}
	}
	return out, nil
}

func (partDomain) Tightening(change any) bool {
	c, ok := change.(Change)
	if !ok {
		return false
	}
	// Edge edits never invalidate a partition (only its cut quality);
	// new vertices need placement and bound changes can break balance.
	return c.Kind == "add-vertex" || c.Kind == "set-bounds"
}

func (d partDomain) CloneSolution(s any) any {
	a, err := d.solution(s)
	if err != nil {
		panic(err)
	}
	return a.Clone()
}

func (d partDomain) ExtendSolution(p, prev any) (any, error) {
	pp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	a, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	next := make(Assignment, pp.N+1)
	copy(next, a)
	if !next.Valid(pp) {
		return nil, fmt.Errorf("partition: cannot extend previous partition to the changed netlist")
	}
	return next, nil
}

func (d partDomain) Verify(p, s any) error {
	pp, err := d.problem(p)
	if err != nil {
		return err
	}
	a, err := d.solution(s)
	if err != nil {
		return err
	}
	if !a.Valid(pp) {
		return fmt.Errorf("partition: assignment violates placement or balance")
	}
	return nil
}

func (d partDomain) Render(p, s any) any {
	a, err := d.solution(s)
	if err != nil {
		return nil
	}
	if len(a) == 0 {
		return []int{}
	}
	return []int(a[1:]) // per-vertex blocks, vertex 1 first
}

func (d partDomain) ParseSolution(p any, spec json.RawMessage) (any, error) {
	pp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	var blocks []int
	if err := json.Unmarshal(spec, &blocks); err != nil {
		return nil, fmt.Errorf("partition: bad solution: %w", err)
	}
	if len(blocks) != pp.N {
		return nil, fmt.Errorf("partition: solution covers %d vertices, want %d", len(blocks), pp.N)
	}
	a := make(Assignment, pp.N+1)
	copy(a[1:], blocks)
	return a, nil
}

func (d partDomain) Agreement(prev, next any) float64 {
	pa, err1 := d.solution(prev)
	na, err2 := d.solution(next)
	if err1 != nil || err2 != nil {
		return 0
	}
	return pa.Agreement(na)
}

func (partDomain) DontCares(p, s any) int { return 0 }

// Flex audits move freedom: a vertex is flexible when some other block
// has size headroom and its own block stays above the lower bound after
// the move.
func (d partDomain) Flex(p, s any, k int) (domain.FlexReport, error) {
	pp, err := d.problem(p)
	if err != nil {
		return domain.FlexReport{}, err
	}
	a, err := d.solution(s)
	if err != nil {
		return domain.FlexReport{}, err
	}
	sizes := a.BlockSizes(pp)
	rep := domain.FlexReport{Total: pp.N}
	for v := 1; v <= pp.N; v++ {
		cur := 0
		if v < len(a) {
			cur = a[v]
		}
		if cur < 1 || sizes[cur] <= pp.MinSize {
			continue
		}
		for b := 1; b <= pp.Blocks; b++ {
			if b != cur && sizes[b] < pp.maxSize() {
				rep.Flexible++
				break
			}
		}
	}
	return rep, nil
}

// partEncoding wraps the min-cut ILP.
type partEncoding struct {
	e *Encoding
}

func (pe *partEncoding) ILP() *ilp.Model { return pe.e.Model }

func (pe *partEncoding) Decode(sol ilp.Solution) (any, error) {
	return pe.e.Decode(sol), nil
}

func (pe *partEncoding) WarmStart(sol any) (ilp.Solution, bool) {
	a, ok := sol.(Assignment)
	if !ok || a == nil {
		return nil, false
	}
	return pe.e.EncodeAssignment(a), true
}

func (d partDomain) Encode(p any) (domain.Encoding, error) {
	pp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	return &partEncoding{e: NewEncoding(pp)}, nil
}

func (d partDomain) PreserveTerms(enc domain.Encoding, p, prev any) error {
	pe, ok := enc.(*partEncoding)
	if !ok {
		return fmt.Errorf("partition: encoding is %T", enc)
	}
	a, err := d.solution(prev)
	if err != nil {
		return err
	}
	e, pp := pe.e, pe.e.Problem
	// Preservation replaces the cut objective entirely (§7 analogue).
	for i := range pp.Edges {
		e.Model.SetObj(e.yCol[i], 0)
	}
	for v := 1; v <= pp.N && v < len(a); v++ {
		if b := a[v]; b >= 1 && b <= pp.Blocks {
			e.Model.SetObj(e.XCol(v, b), -1) // maximize kept placements
		}
	}
	return nil
}

// EnableTerms rewards vertices that keep a spare block: s_{v,b} may be 1
// only when v is not in b and block b retains headroom even with v added;
// flex_v ≤ Σ_b s_{v,b} earns weight w.
func (d partDomain) EnableTerms(enc domain.Encoding, p any, opts domain.EnableOptions) error {
	pe, ok := enc.(*partEncoding)
	if !ok {
		return fmt.Errorf("partition: encoding is %T", enc)
	}
	w := opts.Weight
	if w <= 0 {
		w = 1
	}
	e, pp, m := pe.e, pe.e.Problem, pe.e.Model
	for v := 1; v <= pp.N; v++ {
		var spares []ilp.Coef
		for b := 1; b <= pp.Blocks; b++ {
			s := m.AddVar(fmt.Sprintf("s%d_%d", v, b), 0)
			// Spare only where v does not already live.
			m.AddRow("", []ilp.Coef{{Var: s, Val: 1}, {Var: e.XCol(v, b), Val: 1}}, ilp.LE, 1)
			// Headroom: occupancy of b by other vertices + s ≤ U, so when
			// s = 1, v could move in without breaking the cap.
			coefs := []ilp.Coef{{Var: s, Val: 1}}
			for u := 1; u <= pp.N; u++ {
				if u != v {
					coefs = append(coefs, ilp.Coef{Var: e.XCol(u, b), Val: 1})
				}
			}
			m.AddRow("", coefs, ilp.LE, float64(pp.maxSize()))
			spares = append(spares, ilp.Coef{Var: s, Val: 1})
		}
		flex := m.AddVar(fmt.Sprintf("flex_%d", v), -w)
		terms := append(append([]ilp.Coef(nil), spares...), ilp.Coef{Var: flex, Val: -1})
		m.AddRow(fmt.Sprintf("flexdef_%d", v), terms, ilp.GE, 0)
	}
	return nil
}

// partRegion re-places unbalanced and unplaced vertices with the rest
// frozen, absorbing netlist neighbors on escalation.
type partRegion struct {
	p      *Problem
	prev   Assignment
	region map[int]bool
	full   bool
}

func (d partDomain) AffectedRegion(p, prev any) (domain.Region, error) {
	pp, err := d.problem(p)
	if err != nil {
		return nil, err
	}
	a, err := d.solution(prev)
	if err != nil {
		return nil, err
	}
	grown := make(Assignment, pp.N+1)
	copy(grown, a)
	region := map[int]bool{}
	for v := 1; v <= pp.N; v++ {
		if grown[v] < 1 || grown[v] > pp.Blocks {
			region[v] = true // unplaced vertices (netlist growth)
		}
	}
	sizes := grown.BlockSizes(pp)
	for b := 1; b <= pp.Blocks; b++ {
		if sizes[b] > pp.maxSize() || sizes[b] < pp.MinSize {
			// Balance violation: every vertex of the block may move.
			for v := 1; v <= pp.N; v++ {
				if grown[v] == b {
					region[v] = true
				}
			}
		}
	}
	if len(region) == 0 {
		return nil, nil
	}
	return &partRegion{p: pp, prev: grown, region: region}, nil
}

func (r *partRegion) Size() int {
	if r.full {
		return r.p.N
	}
	return len(r.region)
}

func (r *partRegion) Full() bool { return r.full || len(r.region) >= r.p.N }

func (r *partRegion) Encoding() (domain.Encoding, error) {
	e := NewEncoding(r.p)
	if !r.Full() {
		for v := 1; v <= r.p.N; v++ {
			if r.region[v] {
				continue
			}
			b := r.prev[v]
			if b < 1 || b > r.p.Blocks {
				return nil, fmt.Errorf("partition: frozen vertex %d has no block", v)
			}
			e.Model.AddRow(fmt.Sprintf("freeze_%d", v),
				[]ilp.Coef{{Var: e.XCol(v, b), Val: 1}}, ilp.GE, 1)
		}
	}
	return &partEncoding{e: e}, nil
}

func (r *partRegion) Merge(sub any) (any, error) {
	a, ok := sub.(Assignment)
	if !ok {
		return nil, fmt.Errorf("partition: sub-solution is %T", sub)
	}
	return a, nil // the region model decodes the full assignment
}

func (r *partRegion) Escalate() bool {
	if r.Full() {
		return false
	}
	grew := false
	var members []int
	for v := range r.region {
		members = append(members, v)
	}
	for _, v := range members {
		for _, u := range r.p.Neighbors(v) {
			if !r.region[u] {
				r.region[u] = true
				grew = true
			}
		}
	}
	return grew
}

func (r *partRegion) EscalateToFull() { r.full = true }

func (d partDomain) FingerprintProblem(w io.Writer, p any) {
	pp, err := d.problem(p)
	if err != nil {
		domain.WriteString(w, "partition-bad-problem")
		return
	}
	domain.WriteInts(w, int64(pp.N), int64(pp.Blocks), int64(pp.MinSize), int64(pp.MaxSize), int64(len(pp.Edges)))
	for _, e := range pp.Edges {
		domain.WriteInts(w, int64(e.U), int64(e.V))
		domain.WriteFloats(w, e.W)
	}
}

func (d partDomain) FingerprintSolution(w io.Writer, s any) {
	a, err := d.solution(s)
	if err != nil {
		domain.WriteString(w, "partition-bad-solution")
		return
	}
	domain.WriteInts(w, int64(len(a)))
	for _, b := range a {
		domain.WriteInts(w, int64(b))
	}
}

// Conformance supplies the shared domain test fixture: a 6-vertex
// two-block netlist whose tightening batch grows the netlist and loosens
// the bounds to absorb it.
func (partDomain) Conformance() domain.Conformance {
	p := NewProblem(6, 2)
	p.AddEdge(1, 2, 0)
	p.AddEdge(2, 3, 0)
	p.AddEdge(4, 5, 0)
	p.AddEdge(5, 6, 0)
	p.AddEdge(3, 4, 2)
	return domain.Conformance{
		Problem:     p,
		ProblemJSON: json.RawMessage(`{"vertices": 6, "blocks": 2, "edges": [[1,2],[2,3],[4,5],[5,6],[3,4,2]]}`),
		Tightening: []any{
			Change{Kind: "add-vertex"},
			Change{Kind: "set-bounds", Min: 0, Max: 4},
			Change{Kind: "add-edge", U: 1, V: 6, Weight: 3},
		},
		TighteningJSON: []json.RawMessage{
			json.RawMessage(`{"kind":"add-vertex"}`),
			json.RawMessage(`{"kind":"set-bounds","max":4}`),
			json.RawMessage(`{"kind":"add-edge","u":1,"v":6,"weight":3}`),
		},
		Relaxing: []any{Change{Kind: "remove-edge", U: 5, V: 6}},
		Enable:   domain.EnableOptions{Weight: 1},
		FlexK:    1,
	}
}
