package partition

import (
	"testing"

	"ilpec/internal/domain"
	"ilpec/internal/ilp"
)

// TestPartitionDomainConformance runs the shared cross-domain suite
// against the partitioning adapter.
func TestPartitionDomainConformance(t *testing.T) {
	domain.RunConformance(t, Domain())
}

// twoClusters is a netlist with two dense 4-vertex clusters joined by a
// single bridge: the optimal bipartition cuts only the bridge.
func twoClusters() *Problem {
	p := NewProblem(8, 2)
	cluster := func(vs [4]int) {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				p.AddEdge(vs[i], vs[j], 0)
			}
		}
	}
	cluster([4]int{1, 2, 3, 4})
	cluster([4]int{5, 6, 7, 8})
	p.AddEdge(4, 5, 0) // bridge
	return p
}

func TestPartitionSolveFindsMinCut(t *testing.T) {
	d := Domain()
	p := twoClusters()
	sol, _, err := domain.Solve(d, p, ilp.Options{}, Greedy(p))
	if err != nil {
		t.Fatal(err)
	}
	a := sol.(Assignment)
	if !a.Valid(p) {
		t.Fatal("invalid partition")
	}
	if cut := a.CutWeight(p); cut != 1 {
		t.Fatalf("cut weight %v, want 1 (bridge only)", cut)
	}
	sizes := a.BlockSizes(p)
	if sizes[1] != 4 || sizes[2] != 4 {
		t.Fatalf("block sizes %v, want 4/4", sizes[1:])
	}
}

func TestPartitionFastECPlacesNewVertices(t *testing.T) {
	d := Domain()
	p := twoClusters()
	prev, _, err := domain.Solve(d, p, ilp.Options{}, Greedy(p))
	if err != nil {
		t.Fatal(err)
	}
	// Grow the netlist by two vertices wired into cluster one.
	changed, err := d.ApplyChanges(p, []any{
		Change{Kind: "add-vertex"},
		Change{Kind: "add-vertex"},
		Change{Kind: "set-bounds", Max: 5},
		Change{Kind: "add-edge", U: 9, V: 1, Weight: 2},
		Change{Kind: "add-edge", U: 10, V: 2, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := domain.Fast(d, changed, prev, domain.FastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, next); err != nil {
		t.Fatal(err)
	}
	if stats.AlreadyValid {
		t.Fatal("new vertices reported as already placed")
	}
	// The previously placed vertices keep their blocks unless escalation
	// pulled them in.
	if !stats.FullResolve && stats.SubSize >= changed.(*Problem).N {
		t.Fatalf("region covered all %d vertices", stats.SubSize)
	}
}

func TestPartitionPreserveKeepsPlacements(t *testing.T) {
	d := Domain()
	p := twoClusters()
	prevAny, _, err := domain.Solve(d, p, ilp.Options{}, Greedy(p))
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.ApplyChanges(p, []any{
		Change{Kind: "add-edge", U: 3, V: 6, Weight: 1},
		Change{Kind: "set-bounds", Max: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	next, _, err := domain.Preserve(d, changed, prevAny, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, next); err != nil {
		t.Fatal(err)
	}
	if ag := d.Agreement(prevAny, next); ag != 1 {
		t.Fatalf("agreement %v, want 1 (prev partition still feasible)", ag)
	}
}

func TestPartitionValidateRejectsBadShapes(t *testing.T) {
	for name, p := range map[string]*Problem{
		"zero blocks":     {N: 4, Blocks: 0},
		"overfull":        {N: 10, Blocks: 2, MaxSize: 4},
		"floor too high":  {N: 4, Blocks: 2, MinSize: 3},
		"inverted bounds": {N: 4, Blocks: 2, MinSize: 3, MaxSize: 2},
		"self loop":       {N: 4, Blocks: 2, Edges: []Edge{{U: 2, V: 2}}},
		"edge range":      {N: 4, Blocks: 2, Edges: []Edge{{U: 1, V: 9}}},
		"negative weight": {N: 4, Blocks: 2, Edges: []Edge{{U: 1, V: 2, W: -1}}},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

// TestChangeRejectsNegativeWeight guards the relax fast path: a
// negative-weight add-edge must fail at ApplyChanges, because relax-only
// batches commit the changed problem without a Validate pass.
func TestChangeRejectsNegativeWeight(t *testing.T) {
	d := Domain()
	p := NewProblem(4, 2)
	if _, err := d.ApplyChanges(p, []any{Change{Kind: "add-edge", U: 1, V: 2, Weight: -1}}); err == nil {
		t.Fatal("negative-weight edge accepted")
	}
}

func TestGreedyRespectsBounds(t *testing.T) {
	p := NewProblem(9, 3)
	a := Greedy(p)
	if !a.Valid(p) {
		t.Fatalf("greedy partition invalid: %v (sizes %v)", a, a.BlockSizes(p))
	}
}
