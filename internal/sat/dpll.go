package sat

import (
	"time"

	"ilpec/internal/cnf"
)

// DPLL is a complete SAT solver: iterative DPLL with two-watched-literal
// unit propagation, chronological backtracking, and an activity heuristic
// that bumps variables involved in conflicts (a lightweight VSIDS).
type DPLL struct {
	opts Options

	numVars int
	clauses []cnf.Clause

	// watches[litIndex] lists clause indices watching that literal.
	// litIndex = 2*v for +v, 2*v+1 for -v.
	watches [][]int
	// watched[i] holds the two watched literal positions of clause i
	// (or -1 for short clauses).
	value []int8 // 0 unassigned, 1 true, -1 false; indexed by variable
	level []int  // decision level of each variable
	trail []cnf.Lit
	lim   []int // trail indices at each decision level

	activity []float64
	bump     float64
	occurs   []bool // occurs[v]: variable v appears in some clause

	decisions int64
	conflicts int64
}

// NewDPLL creates a DPLL solver for formula f.
func NewDPLL(f *cnf.Formula, opts Options) *DPLL {
	d := &DPLL{
		opts:     opts,
		numVars:  f.NumVars,
		clauses:  make([]cnf.Clause, len(f.Clauses)),
		watches:  make([][]int, 2*(f.NumVars+1)),
		value:    make([]int8, f.NumVars+1),
		level:    make([]int, f.NumVars+1),
		activity: make([]float64, f.NumVars+1),
		occurs:   make([]bool, f.NumVars+1),
		bump:     1,
	}
	for i, c := range f.Clauses {
		d.clauses[i] = c.Clone()
		for _, l := range c {
			d.occurs[l.Var()] = true
		}
	}
	return d
}

func litIndex(l cnf.Lit) int {
	if l > 0 {
		return 2 * int(l)
	}
	return 2*int(-l) + 1
}

func (d *DPLL) litValue(l cnf.Lit) int8 {
	v := d.value[l.Var()]
	if l.Pos() {
		return v
	}
	return -v
}

func (d *DPLL) assign(l cnf.Lit, lvl int) {
	v := l.Var()
	if l.Pos() {
		d.value[v] = 1
	} else {
		d.value[v] = -1
	}
	d.level[v] = lvl
	d.trail = append(d.trail, l)
}

// Solve runs the search. The returned assignment commits every variable
// that occurs in a clause; variables never touched remain don't-care.
func (d *DPLL) Solve() Result {
	start := time.Now()
	res := d.solve()
	res.Runtime = time.Since(start)
	res.Decisions = d.decisions
	res.Conflicts = d.conflicts
	return res
}

func (d *DPLL) solve() Result {
	// Handle empty and unit clauses up front; install watches for the rest.
	var units []cnf.Lit
	for i, c := range d.clauses {
		switch len(c) {
		case 0:
			return Result{Status: Unsatisfiable}
		case 1:
			units = append(units, c[0])
		default:
			d.watches[litIndex(c[0])] = append(d.watches[litIndex(c[0])], i)
			d.watches[litIndex(c[1])] = append(d.watches[litIndex(c[1])], i)
		}
		_ = i
	}
	for _, u := range units {
		switch d.litValue(u) {
		case -1:
			return Result{Status: Unsatisfiable}
		case 0:
			d.assign(u, 0)
		}
	}
	if !d.propagate(0) {
		return Result{Status: Unsatisfiable}
	}

	for {
		l := d.pickBranch()
		if l == 0 {
			return Result{Status: Satisfiable, Assignment: d.extract()}
		}
		if d.opts.MaxDecisions > 0 && d.decisions >= d.opts.MaxDecisions {
			return Result{Status: Unknown}
		}
		d.decisions++
		d.lim = append(d.lim, len(d.trail))
		d.assign(l, len(d.lim))
		for !d.propagate(len(d.lim)) {
			d.conflicts++
			d.bumpConflictActivity()
			flip, ok := d.backtrack()
			if !ok {
				return Result{Status: Unsatisfiable}
			}
			d.assign(flip, len(d.lim))
		}
	}
}

// propagate runs two-watched-literal unit propagation over the trail tail.
// It returns false on conflict.
func (d *DPLL) propagate(lvl int) bool {
	head := 0
	if len(d.lim) > 0 {
		head = d.lim[len(d.lim)-1]
	}
	// Propagate from the first unpropagated literal. We track a queue index
	// into the trail; everything before the current decision's limit has
	// already been propagated at lower levels, except at level 0 where we
	// start from the beginning.
	if lvl == 0 {
		head = 0
	}
	for q := head; q < len(d.trail); q++ {
		falsified := d.trail[q].Neg()
		wl := d.watches[litIndex(falsified)]
		var keep []int
		for wi := 0; wi < len(wl); wi++ {
			ci := wl[wi]
			c := d.clauses[ci]
			// Ensure the falsified literal is at position 1.
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			if d.litValue(c[0]) == 1 {
				keep = append(keep, ci) // clause satisfied by other watch
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if d.litValue(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					d.watches[litIndex(c[1])] = append(d.watches[litIndex(c[1])], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// No new watch: clause is unit or conflicting on c[0].
			keep = append(keep, ci)
			switch d.litValue(c[0]) {
			case 0:
				d.assign(c[0], lvl)
			case -1:
				// Conflict: restore remaining watches and fail.
				keep = append(keep, wl[wi+1:]...)
				d.watches[litIndex(falsified)] = keep
				return false
			}
		}
		d.watches[litIndex(falsified)] = keep
	}
	return true
}

// pickBranch selects the unassigned variable with the highest activity
// (ties to the lowest index) and returns its positive literal biased by the
// activity sign convention; 0 when all clause variables are assigned.
func (d *DPLL) pickBranch() cnf.Lit {
	best, bestAct := 0, -1.0
	for v := 1; v <= d.numVars; v++ {
		if d.value[v] == 0 && d.occurs[v] && d.activity[v] > bestAct {
			best, bestAct = v, d.activity[v]
		}
	}
	if best == 0 {
		return 0
	}
	return cnf.Lit(best)
}

func (d *DPLL) bumpConflictActivity() {
	// Bump the variables assigned at the current decision level.
	if len(d.lim) == 0 {
		return
	}
	from := d.lim[len(d.lim)-1]
	for _, l := range d.trail[from:] {
		d.activity[l.Var()] += d.bump
	}
	d.bump *= 1.05
	if d.bump > 1e100 {
		for v := range d.activity {
			d.activity[v] *= 1e-100
		}
		d.bump *= 1e-100
	}
}

// backtrack undoes the deepest decision whose second phase is untried and
// returns the flipped decision literal. DPLL here flips the decision
// literal (try +v first, then -v); a fully explored level is popped.
func (d *DPLL) backtrack() (cnf.Lit, bool) {
	for len(d.lim) > 0 {
		from := d.lim[len(d.lim)-1]
		decision := d.trail[from]
		// Undo assignments at this level.
		for _, l := range d.trail[from:] {
			d.value[l.Var()] = 0
		}
		d.trail = d.trail[:from]
		d.lim = d.lim[:len(d.lim)-1]
		if decision.Pos() {
			// Second phase: re-open the level with the negated decision.
			d.lim = append(d.lim, len(d.trail))
			return decision.Neg(), true
		}
		// Both phases tried; continue unwinding.
	}
	return 0, false
}

func (d *DPLL) extract() cnf.Assignment {
	a := cnf.NewAssignment(d.numVars)
	for v := 1; v <= d.numVars; v++ {
		switch d.value[v] {
		case 1:
			a.Set(v, cnf.True)
		case -1:
			a.Set(v, cnf.False)
		}
	}
	return a
}

// Solve is a convenience wrapper: complete DPLL search on f.
func Solve(f *cnf.Formula, opts Options) Result {
	return NewDPLL(f, opts).Solve()
}

// IsSatisfiable reports whether f is satisfiable using the complete solver
// (no resource limits).
func IsSatisfiable(f *cnf.Formula) bool {
	return Solve(f, Options{}).Status == Satisfiable
}
