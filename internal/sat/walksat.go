package sat

import (
	"math/rand"
	"time"

	"ilpec/internal/cnf"
)

// WalkSAT is an incomplete local-search solver (Selman/Kautz WalkSAT with
// the "best-of-break" heuristic). It either finds a satisfying assignment
// or gives up after the flip budget; it can never prove unsatisfiability.
type WalkSAT struct {
	opts    Options
	formula *cnf.Formula
	initial cnf.Assignment // optional warm start
}

// NewWalkSAT creates a local-search solver for f.
func NewWalkSAT(f *cnf.Formula, opts Options) *WalkSAT {
	return &WalkSAT{opts: opts, formula: f}
}

// SetInitial seeds the first restart with a (total or partial) assignment;
// don't-care variables are randomized.
func (w *WalkSAT) SetInitial(a cnf.Assignment) { w.initial = a }

// Solve runs the local search.
func (w *WalkSAT) Solve() Result {
	start := time.Now()
	res := w.solve()
	res.Runtime = time.Since(start)
	return res
}

func (w *WalkSAT) solve() Result {
	f := w.formula
	if f.HasEmptyClause() {
		return Result{Status: Unsatisfiable}
	}
	n := f.NumVars
	maxFlips := w.opts.MaxFlips
	if maxFlips == 0 {
		maxFlips = int64(50_000 + 100*n)
	}
	noise := w.opts.Noise
	if noise == 0 {
		noise = 0.5
	}
	restarts := w.opts.Restarts
	if restarts == 0 {
		restarts = 10
	}
	rng := rand.New(rand.NewSource(w.opts.Seed + 1))

	occ := f.Occurrences()
	val := make([]bool, n+1) // current total assignment
	var flips int64

	for r := 0; r < restarts; r++ {
		// Initialize: warm start on the first restart, random otherwise.
		for v := 1; v <= n; v++ {
			if r == 0 && w.initial != nil {
				switch w.initial.Get(v) {
				case cnf.True:
					val[v] = true
					continue
				case cnf.False:
					val[v] = false
					continue
				}
			}
			val[v] = rng.Intn(2) == 0
		}

		// unsat tracks indices of unsatisfied clauses.
		satCount := make([]int, len(f.Clauses)) // true literals per clause
		var unsat []int
		pos := make([]int, len(f.Clauses)) // position of clause in unsat, -1 if absent
		litTrue := func(l cnf.Lit) bool {
			if l.Pos() {
				return val[l.Var()]
			}
			return !val[l.Var()]
		}
		for i, c := range f.Clauses {
			pos[i] = -1
			for _, l := range c {
				if litTrue(l) {
					satCount[i]++
				}
			}
			if satCount[i] == 0 {
				pos[i] = len(unsat)
				unsat = append(unsat, i)
			}
		}
		addUnsat := func(i int) {
			if pos[i] < 0 {
				pos[i] = len(unsat)
				unsat = append(unsat, i)
			}
		}
		removeUnsat := func(i int) {
			p := pos[i]
			if p < 0 {
				return
			}
			last := unsat[len(unsat)-1]
			unsat[p] = last
			pos[last] = p
			unsat = unsat[:len(unsat)-1]
			pos[i] = -1
		}
		flip := func(v int) {
			val[v] = !val[v]
			for _, ci := range occ[v] {
				c := f.Clauses[ci]
				cnt := 0
				for _, l := range c {
					if litTrue(l) {
						cnt++
					}
				}
				satCount[ci] = cnt
				if cnt == 0 {
					addUnsat(ci)
				} else {
					removeUnsat(ci)
				}
			}
		}
		// breakCount: clauses that become unsatisfied if v flips.
		breakCount := func(v int) int {
			b := 0
			for _, ci := range occ[v] {
				if satCount[ci] == 1 {
					// Only breaks if the single true literal is on v.
					for _, l := range f.Clauses[ci] {
						if l.Var() == v && litTrue(l) {
							b++
							break
						}
					}
				}
			}
			return b
		}

		budget := maxFlips / int64(restarts)
		if budget == 0 {
			budget = maxFlips
		}
		for step := int64(0); step < budget; step++ {
			if len(unsat) == 0 {
				return Result{Status: Satisfiable, Assignment: w.extract(val), Flips: flips}
			}
			flips++
			c := f.Clauses[unsat[rng.Intn(len(unsat))]]
			if len(c) == 0 {
				return Result{Status: Unsatisfiable, Flips: flips}
			}
			// Pick a variable: freebie (break 0), else noise-random, else
			// minimal break.
			bestV, bestB := -1, 1<<30
			for _, l := range c {
				b := breakCount(l.Var())
				if b < bestB {
					bestV, bestB = l.Var(), b
				}
			}
			if bestB > 0 && rng.Float64() < noise {
				bestV = c[rng.Intn(len(c))].Var()
			}
			flip(bestV)
		}
	}
	return Result{Status: Unknown, Flips: flips}
}

func (w *WalkSAT) extract(val []bool) cnf.Assignment {
	a := cnf.NewAssignment(len(val) - 1)
	for v := 1; v < len(val); v++ {
		if val[v] {
			a.Set(v, cnf.True)
		} else {
			a.Set(v, cnf.False)
		}
	}
	return a
}

// LocalSearch is a convenience wrapper around WalkSAT.
func LocalSearch(f *cnf.Formula, opts Options) Result {
	return NewWalkSAT(f, opts).Solve()
}
