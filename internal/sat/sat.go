// Package sat provides Boolean-satisfiability solvers over the cnf
// substrate: a complete DPLL solver with two-watched-literal propagation
// and activity-guided branching, a WalkSAT-style local search, and an
// exhaustive reference solver for testing.
//
// Within the reproduction these solvers play the roles the paper assigns to
// "an arbitrary algorithm, such as simulated annealing or a heuristic"
// (§4): screening mutated instances for satisfiability, producing initial
// solutions, and serving as the non-ILP baseline.
package sat

import (
	"errors"
	"time"

	"ilpec/internal/cnf"
)

// Status is the outcome of a solve call.
type Status int

const (
	// Unknown means the solver hit a resource limit before deciding.
	Unknown Status = iota
	// Satisfiable means a satisfying assignment was found.
	Satisfiable
	// Unsatisfiable means the formula has no satisfying assignment.
	Unsatisfiable
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Satisfiable:
		return "SAT"
	case Unsatisfiable:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Result carries the outcome of a solve together with search statistics.
type Result struct {
	Status     Status
	Assignment cnf.Assignment // valid when Status == Satisfiable
	Decisions  int64
	Conflicts  int64
	Flips      int64 // local search only
	Runtime    time.Duration
}

// ErrLimit is returned by solvers that exhaust their decision/flip budget.
var ErrLimit = errors.New("sat: resource limit exhausted")

// Options configures the solvers. The zero value gives sensible defaults.
type Options struct {
	// MaxDecisions bounds DPLL decisions (0 = unlimited).
	MaxDecisions int64
	// MaxFlips bounds local-search flips (0 = solver default).
	MaxFlips int64
	// Seed drives all randomized choices; solvers are deterministic for a
	// fixed seed.
	Seed int64
	// Noise is the WalkSAT random-walk probability in [0,1]
	// (0 = solver default of 0.5).
	Noise float64
	// Restarts is the number of local-search restarts (0 = default of 10).
	Restarts int
}
