package sat

import (
	"ilpec/internal/cnf"
)

// MaxBruteVars bounds the exhaustive solver; beyond this it refuses to run.
const MaxBruteVars = 25

// BruteForce enumerates all assignments over the variables that actually
// occur in f. It is the reference oracle for tests. Variables that do not
// occur are left don't-care. Returns Unknown if f has more active
// variables than MaxBruteVars.
func BruteForce(f *cnf.Formula) Result {
	vars := f.Vars()
	if len(vars) > MaxBruteVars {
		return Result{Status: Unknown}
	}
	if f.HasEmptyClause() {
		return Result{Status: Unsatisfiable}
	}
	a := cnf.NewAssignment(f.NumVars)
	total := 1 << len(vars)
	for mask := 0; mask < total; mask++ {
		for i, v := range vars {
			if mask&(1<<i) != 0 {
				a.Set(v, cnf.True)
			} else {
				a.Set(v, cnf.False)
			}
		}
		if a.Satisfies(f) {
			return Result{Status: Satisfiable, Assignment: a.Clone()}
		}
	}
	return Result{Status: Unsatisfiable}
}

// CountSolutions exhaustively counts satisfying assignments over the active
// variables (panics above MaxBruteVars). Used by property tests.
func CountSolutions(f *cnf.Formula) int {
	vars := f.Vars()
	if len(vars) > MaxBruteVars {
		panic("sat: CountSolutions instance too large")
	}
	if f.HasEmptyClause() {
		return 0
	}
	a := cnf.NewAssignment(f.NumVars)
	count := 0
	total := 1 << len(vars)
	for mask := 0; mask < total; mask++ {
		for i, v := range vars {
			if mask&(1<<i) != 0 {
				a.Set(v, cnf.True)
			} else {
				a.Set(v, cnf.False)
			}
		}
		if a.Satisfies(f) {
			count++
		}
	}
	return count
}

// ForEachSolution invokes fn for every satisfying total assignment over the
// active variables of f; fn returning false stops the enumeration. Panics
// above MaxBruteVars.
func ForEachSolution(f *cnf.Formula, fn func(cnf.Assignment) bool) {
	vars := f.Vars()
	if len(vars) > MaxBruteVars {
		panic("sat: ForEachSolution instance too large")
	}
	if f.HasEmptyClause() {
		return
	}
	a := cnf.NewAssignment(f.NumVars)
	total := 1 << len(vars)
	for mask := 0; mask < total; mask++ {
		for i, v := range vars {
			if mask&(1<<i) != 0 {
				a.Set(v, cnf.True)
			} else {
				a.Set(v, cnf.False)
			}
		}
		if a.Satisfies(f) {
			if !fn(a.Clone()) {
				return
			}
		}
	}
}
