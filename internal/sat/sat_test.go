package sat

import (
	"math/rand"
	"testing"

	"ilpec/internal/cnf"
)

func TestStatusString(t *testing.T) {
	if Satisfiable.String() != "SAT" || Unsatisfiable.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String mismatch")
	}
}

func TestDPLLSimpleSAT(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 2}, []int{-2, 3})
	res := Solve(f, Options{})
	if res.Status != Satisfiable {
		t.Fatalf("status = %v", res.Status)
	}
	if !res.Assignment.Satisfies(f) {
		t.Fatal("returned assignment does not satisfy formula")
	}
}

func TestDPLLSimpleUNSAT(t *testing.T) {
	f := cnf.FromClauses([]int{1}, []int{-1})
	if res := Solve(f, Options{}); res.Status != Unsatisfiable {
		t.Fatalf("status = %v", res.Status)
	}
	// Pigeonhole PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT.
	php := cnf.FromClauses(
		[]int{1, 2}, []int{3, 4}, []int{5, 6}, // each pigeon in a hole
		[]int{-1, -3}, []int{-1, -5}, []int{-3, -5}, // hole 1 conflicts
		[]int{-2, -4}, []int{-2, -6}, []int{-4, -6}, // hole 2 conflicts
	)
	if res := Solve(php, Options{}); res.Status != Unsatisfiable {
		t.Fatalf("PHP(3,2) status = %v", res.Status)
	}
}

func TestDPLLEmptyClause(t *testing.T) {
	f := cnf.New(2)
	f.AddClause(cnf.Clause{})
	if res := Solve(f, Options{}); res.Status != Unsatisfiable {
		t.Fatal("empty clause should be UNSAT")
	}
}

func TestDPLLEmptyFormula(t *testing.T) {
	f := cnf.New(3)
	res := Solve(f, Options{})
	if res.Status != Satisfiable {
		t.Fatal("empty formula should be SAT")
	}
	if res.Assignment.AssignedCount() != 0 {
		t.Fatal("no variable should be committed for an empty formula")
	}
}

func TestDPLLUnitConflictAtRoot(t *testing.T) {
	f := cnf.FromClauses([]int{1}, []int{-1, 2}, []int{-2})
	if res := Solve(f, Options{}); res.Status != Unsatisfiable {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
}

func TestDPLLDecisionLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomKSAT(rng, 60, 255, 3)
	res := Solve(f, Options{MaxDecisions: 1})
	if res.Status == Unknown {
		return // limit respected
	}
	// A solver that decides the instance within one decision is fine too,
	// but the assignment must then be correct.
	if res.Status == Satisfiable && !res.Assignment.Satisfies(f) {
		t.Fatal("bogus SAT under decision limit")
	}
}

func randomKSAT(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.New(nVars)
	for i := 0; i < nClauses; i++ {
		cl := make(cnf.Clause, 0, k)
		seen := map[int]bool{}
		for len(cl) < k {
			v := 1 + rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl = append(cl, l)
		}
		f.AddClause(cl)
	}
	return f
}

// TestDPLLAgainstBruteForce cross-checks SAT/UNSAT verdicts on many random
// small instances — the core correctness test for the complete solver.
func TestDPLLAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(5*nVars)
		f := randomKSAT(rng, nVars, nClauses, 2+rng.Intn(2))
		want := BruteForce(f).Status
		got := Solve(f, Options{})
		if got.Status != want {
			t.Fatalf("trial %d: dpll=%v brute=%v formula=%v", trial, got.Status, want, f)
		}
		if got.Status == Satisfiable && !got.Assignment.Satisfies(f) {
			t.Fatalf("trial %d: invalid model", trial)
		}
	}
}

func TestWalkSATFindsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Planted-solution 3-SAT: every clause satisfied by the all-true
	// assignment, so the instance is guaranteed satisfiable.
	f := cnf.New(40)
	for i := 0; i < 160; i++ {
		cl := make(cnf.Clause, 0, 3)
		cl = append(cl, cnf.Lit(1+rng.Intn(40))) // positive literal keeps plant
		for len(cl) < 3 {
			v := 1 + rng.Intn(40)
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl = append(cl, l)
		}
		f.AddClause(cl)
	}
	res := LocalSearch(f, Options{Seed: 5})
	if res.Status != Satisfiable {
		t.Fatalf("WalkSAT failed on planted instance: %v", res.Status)
	}
	if !res.Assignment.Satisfies(f) {
		t.Fatal("WalkSAT returned invalid model")
	}
	if res.Flips == 0 && res.Assignment.AssignedCount() == 0 {
		t.Fatal("suspicious zero-work result")
	}
}

func TestWalkSATWarmStart(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2}, []int{-1, 3}, []int{2, -3})
	w := NewWalkSAT(f, Options{Seed: 1, MaxFlips: 100})
	init := cnf.AssignmentFromBools(true, true, true)
	w.SetInitial(init)
	res := w.Solve()
	if res.Status != Satisfiable {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Flips != 0 {
		t.Fatalf("warm start from a model should need 0 flips, used %d", res.Flips)
	}
}

func TestWalkSATEmptyClause(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	if res := LocalSearch(f, Options{}); res.Status != Unsatisfiable {
		t.Fatal("WalkSAT should report UNSAT on an empty clause")
	}
}

func TestWalkSATDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := randomKSAT(rng, 20, 60, 3)
	r1 := LocalSearch(f, Options{Seed: 123})
	r2 := LocalSearch(f, Options{Seed: 123})
	if r1.Status != r2.Status || r1.Flips != r2.Flips {
		t.Fatal("WalkSAT not deterministic for a fixed seed")
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	f := cnf.New(MaxBruteVars + 1)
	for v := 1; v <= MaxBruteVars+1; v++ {
		f.AddClause(cnf.Clause{cnf.Lit(v)})
	}
	if res := BruteForce(f); res.Status != Unknown {
		t.Fatal("BruteForce should refuse oversized instances")
	}
}

func TestCountSolutions(t *testing.T) {
	// (v1 + v2) has 3 models over 2 vars.
	f := cnf.FromClauses([]int{1, 2})
	if n := CountSolutions(f); n != 3 {
		t.Fatalf("CountSolutions = %d, want 3", n)
	}
	unsat := cnf.FromClauses([]int{1}, []int{-1})
	if n := CountSolutions(unsat); n != 0 {
		t.Fatalf("CountSolutions(unsat) = %d", n)
	}
}

func TestForEachSolution(t *testing.T) {
	f := cnf.FromClauses([]int{1, 2})
	count := 0
	ForEachSolution(f, func(a cnf.Assignment) bool {
		if !a.Satisfies(f) {
			t.Fatal("enumerated non-model")
		}
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("enumerated %d models, want 3", count)
	}
	// Early stop.
	count = 0
	ForEachSolution(f, func(cnf.Assignment) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop enumerated %d", count)
	}
}

func TestIsSatisfiable(t *testing.T) {
	if !IsSatisfiable(cnf.FromClauses([]int{1})) {
		t.Fatal("trivial SAT reported UNSAT")
	}
	if IsSatisfiable(cnf.FromClauses([]int{1}, []int{-1})) {
		t.Fatal("trivial UNSAT reported SAT")
	}
}

// TestDPLLHardRandom exercises the solver near the phase transition where
// backtracking actually happens.
func TestDPLLHardRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	sat, unsat := 0, 0
	for trial := 0; trial < 20; trial++ {
		f := randomKSAT(rng, 30, 128, 3) // ratio ≈ 4.27
		res := Solve(f, Options{})
		switch res.Status {
		case Satisfiable:
			sat++
			if !res.Assignment.Satisfies(f) {
				t.Fatal("invalid model near phase transition")
			}
		case Unsatisfiable:
			unsat++
		default:
			t.Fatal("unexpected Unknown without limits")
		}
	}
	if sat == 0 && unsat == 0 {
		t.Fatal("no instances solved")
	}
}

func TestDPLLStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := randomKSAT(rng, 25, 106, 3)
	res := Solve(f, Options{})
	if res.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
	if res.Status == Unknown {
		t.Fatal("unexpected Unknown")
	}
}
