// Package encode translates SAT instances into 0-1 ILP models through the
// set-cover formulation of §3 of the paper, and decodes ILP solutions back
// into (partial) truth assignments.
//
// The encoding uses 2n literal-selection variables for an n-variable
// formula: column i (0-based i = v-1) selects the positive literal of
// variable v, column n+i selects the negative literal. Each clause yields a
// cover row (at least one of its literals' columns must be selected) and
// each variable a consistency row (both polarities cannot be selected).
// The objective minimizes the number of selected literals, which maximizes
// don't-care variables — the property fast EC exploits (§6).
package encode

import (
	"fmt"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
)

// Encoding ties an ILP model to the SAT instance it encodes.
type Encoding struct {
	// Model is the set-cover ILP.
	Model *ilp.Model
	// Formula is the encoded SAT instance (not copied; do not mutate while
	// the encoding is in use).
	Formula *cnf.Formula
	// NumVars is the number of SAT variables n; ILP columns 0..n-1 are
	// positive literals, n..2n-1 negative literals.
	NumVars int
	// CoverRow maps clause index -> ILP row index of its cover row.
	CoverRow []int
	// ConsistencyRow maps variable v (1-based) -> ILP row index of
	// x_pos + x_neg ≤ 1; index 0 unused.
	ConsistencyRow []int
}

// PosCol returns the ILP column of variable v's positive literal.
func (e *Encoding) PosCol(v int) int { return v - 1 }

// NegCol returns the ILP column of variable v's negative literal.
func (e *Encoding) NegCol(v int) int { return e.NumVars + v - 1 }

// LitCol returns the ILP column selecting literal l.
func (e *Encoding) LitCol(l cnf.Lit) int {
	if l.Pos() {
		return e.PosCol(l.Var())
	}
	return e.NegCol(l.Var())
}

// ColLit is the inverse of LitCol.
func (e *Encoding) ColLit(col int) cnf.Lit {
	if col < e.NumVars {
		return cnf.Lit(col + 1)
	}
	return cnf.Lit(-(col - e.NumVars + 1))
}

// New builds the set-cover encoding of f.
func New(f *cnf.Formula) *Encoding {
	n := f.NumVars
	m := ilp.NewModel(false) // minimize selected literals
	e := &Encoding{
		Model:          m,
		Formula:        f,
		NumVars:        n,
		CoverRow:       make([]int, len(f.Clauses)),
		ConsistencyRow: make([]int, n+1),
	}
	for v := 1; v <= n; v++ {
		m.AddVar(fmt.Sprintf("p%d", v), 1)
	}
	for v := 1; v <= n; v++ {
		m.AddVar(fmt.Sprintf("n%d", v), 1)
	}
	for ci, cl := range f.Clauses {
		coefs := make([]ilp.Coef, 0, len(cl))
		seen := make(map[int]bool, len(cl))
		for _, l := range cl {
			col := e.LitCol(l)
			if !seen[col] {
				seen[col] = true
				coefs = append(coefs, ilp.Coef{Var: col, Val: 1})
			}
		}
		e.CoverRow[ci] = m.AddRow(fmt.Sprintf("c%d", ci), coefs, ilp.GE, 1)
	}
	for v := 1; v <= n; v++ {
		e.ConsistencyRow[v] = m.AddRow(
			fmt.Sprintf("v%d", v),
			[]ilp.Coef{{Var: e.PosCol(v), Val: 1}, {Var: e.NegCol(v), Val: 1}},
			ilp.LE, 1)
	}
	return e
}

// Decode converts an ILP solution into a partial truth assignment:
// selected positive column → True, selected negative column → False,
// neither → don't-care.
func (e *Encoding) Decode(sol ilp.Solution) cnf.Assignment {
	a := cnf.NewAssignment(e.NumVars)
	for v := 1; v <= e.NumVars; v++ {
		switch {
		case sol[e.PosCol(v)] == 1:
			a.Set(v, cnf.True)
		case sol[e.NegCol(v)] == 1:
			a.Set(v, cnf.False)
		}
	}
	return a
}

// EncodeAssignment converts a (partial) truth assignment into an ILP
// solution vector: committed variables select the matching literal column.
func (e *Encoding) EncodeAssignment(a cnf.Assignment) ilp.Solution {
	sol := make(ilp.Solution, e.Model.NumVars())
	for v := 1; v <= e.NumVars; v++ {
		switch a.Get(v) {
		case cnf.True:
			sol[e.PosCol(v)] = 1
		case cnf.False:
			sol[e.NegCol(v)] = 1
		}
	}
	return sol
}

// Verify checks the encoding invariant on a solved model: a feasible ILP
// solution decodes to an assignment satisfying the formula.
func (e *Encoding) Verify(sol ilp.Solution) error {
	if !e.Model.Feasible(sol) {
		return fmt.Errorf("encode: solution infeasible for the ILP")
	}
	a := e.Decode(sol)
	if !a.Satisfies(e.Formula) {
		return fmt.Errorf("encode: decoded assignment does not satisfy the formula")
	}
	return nil
}
