package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ilpec/internal/cnf"
	"ilpec/internal/ilp"
	"ilpec/internal/sat"
)

// paper3 is the §3 example: F = (v1' + v2)(v2 + v3)(v1 + v3').
func paper3() *cnf.Formula {
	return cnf.FromClauses([]int{-1, 2}, []int{2, 3}, []int{1, -3})
}

func TestColumnMapping(t *testing.T) {
	e := New(paper3())
	if e.PosCol(1) != 0 || e.NegCol(1) != 3 || e.PosCol(3) != 2 || e.NegCol(3) != 5 {
		t.Fatal("column mapping wrong")
	}
	if e.LitCol(cnf.Lit(2)) != 1 || e.LitCol(cnf.Lit(-2)) != 4 {
		t.Fatal("LitCol wrong")
	}
	for col := 0; col < 6; col++ {
		if e.LitCol(e.ColLit(col)) != col {
			t.Fatalf("ColLit/LitCol not inverse at %d", col)
		}
	}
}

func TestModelShape(t *testing.T) {
	f := paper3()
	e := New(f)
	m := e.Model
	// 2n vars, one cover row per clause + one consistency row per var.
	if m.NumVars() != 6 || m.NumRows() != 3+3 {
		t.Fatalf("model shape %v", m)
	}
	if m.Maximize {
		t.Fatal("set-cover objective must minimize")
	}
	for j := 0; j < m.NumVars(); j++ {
		if m.Obj(j) != 1 {
			t.Fatal("objective must be all ones (min #selected literals)")
		}
	}
}

func TestPaperExampleOptimum(t *testing.T) {
	f := paper3()
	e := New(f)
	res := ilp.Solve(e.Model, ilp.Options{})
	if res.Status != ilp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Selecting just v2=1 and either v1 or v3 consistently covers all
	// three clauses: minimum is 2 literals.
	if res.Objective != 2 {
		t.Fatalf("objective = %v, want 2", res.Objective)
	}
	if err := e.Verify(res.Solution); err != nil {
		t.Fatal(err)
	}
	a := e.Decode(res.Solution)
	if !a.Satisfies(f) {
		t.Fatal("decoded assignment unsatisfying")
	}
	if a.DontCareCount() != 1 {
		t.Fatalf("expected 1 don't-care variable, got %d", a.DontCareCount())
	}
}

func TestEncodeAssignmentRoundTrip(t *testing.T) {
	f := paper3()
	e := New(f)
	a := cnf.NewAssignment(3)
	a.Set(1, cnf.True)
	a.Set(2, cnf.True) // v3 stays DC
	sol := e.EncodeAssignment(a)
	back := e.Decode(sol)
	for v := 1; v <= 3; v++ {
		if back.Get(v) != a.Get(v) {
			t.Fatalf("round trip broke v%d: %v -> %v", v, a.Get(v), back.Get(v))
		}
	}
}

func TestUnsatisfiableEncodes(t *testing.T) {
	f := cnf.FromClauses([]int{1}, []int{-1})
	e := New(f)
	res := ilp.Solve(e.Model, ilp.Options{})
	if res.Status != ilp.Infeasible {
		t.Fatalf("UNSAT formula encoded to %v ILP", res.Status)
	}
}

func TestDuplicateLiteralsMerged(t *testing.T) {
	f := cnf.FromClauses([]int{1, 1, 2})
	e := New(f)
	row := e.Model.RowAt(e.CoverRow[0])
	if len(row.Coefs) != 2 {
		t.Fatalf("duplicate literal not merged: %+v", row.Coefs)
	}
}

// Property: SAT-solver verdict and ILP-feasibility verdict agree, and any
// ILP optimum decodes to a satisfying assignment.
func TestEncodingEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 2 + r.Intn(5)
		nClauses := 1 + r.Intn(8)
		f := cnf.New(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + r.Intn(3)
			cl := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				v := 1 + r.Intn(nVars)
				l := cnf.Lit(v)
				if r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			f.AddClause(cl)
		}
		e := New(f)
		ilpRes := ilp.Solve(e.Model, ilp.Options{})
		satRes := sat.BruteForce(f)
		if (ilpRes.Status == ilp.Optimal) != (satRes.Status == sat.Satisfiable) {
			return false
		}
		if ilpRes.Status == ilp.Optimal {
			if err := e.Verify(ilpRes.Solution); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ILP optimum equals the minimum number of committed
// variables over all satisfying assignments (maximum don't-cares).
func TestMinimumCommitmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		nVars := 2 + rng.Intn(4)
		f := cnf.New(nVars)
		for i := 0; i < 1+rng.Intn(5); i++ {
			k := 1 + rng.Intn(3)
			cl := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				v := 1 + rng.Intn(nVars)
				l := cnf.Lit(v)
				if rng.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			f.AddClause(cl)
		}
		e := New(f)
		res := ilp.Solve(e.Model, ilp.Options{})
		if res.Status != ilp.Optimal {
			continue
		}
		// Oracle: enumerate all total assignments; for each, count the
		// minimal subset of committed literals needed is hard, but the ILP
		// optimum must never exceed the best total assignment's commitment
		// (n) and must be achievable: verify by decoding.
		a := e.Decode(res.Solution)
		if int(res.Objective) != a.AssignedCount() {
			t.Fatalf("trial %d: objective %v != committed %d", trial, res.Objective, a.AssignedCount())
		}
		// Every strictly smaller commitment count must be infeasible:
		// check via a budget row.
		budget := e.Model.Clone()
		var coefs []ilp.Coef
		for j := 0; j < budget.NumVars(); j++ {
			coefs = append(coefs, ilp.Coef{Var: j, Val: 1})
		}
		budget.AddRow("budget", coefs, ilp.LE, res.Objective-1)
		if r2 := ilp.Solve(budget, ilp.Options{}); r2.Status != ilp.Infeasible {
			t.Fatalf("trial %d: commitment below optimum is feasible", trial)
		}
	}
}
