package heurilp

import (
	"math"
	"math/rand"
	"testing"

	"ilpec/internal/ilp"
)

func TestFindsKnapsackFeasible(t *testing.T) {
	m := ilp.NewModel(true)
	coefs := make([]ilp.Coef, 3)
	for j, v := range []float64{6, 5, 4} {
		m.AddVar("", v)
		coefs[j] = ilp.Coef{Var: j, Val: []float64{3, 2, 2}[j]}
	}
	m.AddRow("cap", coefs, ilp.LE, 4)
	res := Solve(m, Options{Seed: 1})
	if !res.Feasible {
		t.Fatal("no feasible solution found")
	}
	if !m.Feasible(res.Solution) {
		t.Fatal("claimed solution is infeasible")
	}
	if res.Objective != m.Objective(res.Solution) {
		t.Fatal("objective mismatch")
	}
	// Local search should find the optimum 9 on this tiny instance.
	if res.Objective < 9 {
		t.Fatalf("objective = %v, want 9", res.Objective)
	}
}

func TestWarmStartKept(t *testing.T) {
	m := ilp.NewModel(false)
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 1)
	m.AddRow("", []ilp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, ilp.GE, 1)
	ws := ilp.Solution{1, 0} // already optimal
	res := Solve(m, Options{Seed: 3, WarmStart: ws, MaxFlips: 50})
	if !res.Feasible || res.Objective != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMatchesExactOnRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	okCount := 0
	for trial := 0; trial < 40; trial++ {
		m := ilp.NewModel(trial%2 == 0)
		n := 3 + rng.Intn(7)
		for j := 0; j < n; j++ {
			m.AddVar("", float64(rng.Intn(11)-5))
		}
		for i := 0; i < 1+rng.Intn(4); i++ {
			var coefs []ilp.Coef
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, ilp.Coef{Var: j, Val: float64(rng.Intn(5) - 2)})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, ilp.Coef{Var: 0, Val: 1})
			}
			m.AddRow("", coefs, ilp.Sense(rng.Intn(3)), float64(rng.Intn(5)-1))
		}
		exact := ilp.Enumerate(m)
		heur := Solve(m, Options{Seed: int64(trial)})
		if exact.Status == ilp.Infeasible {
			if heur.Feasible {
				t.Fatalf("trial %d: heuristic found solution to infeasible model", trial)
			}
			continue
		}
		if !heur.Feasible {
			continue // incomplete search may miss; tracked below
		}
		if !m.Feasible(heur.Solution) {
			t.Fatalf("trial %d: infeasible claimed solution", trial)
		}
		// Heuristic can be suboptimal but never better than exact.
		if m.Better(heur.Objective, exact.Objective) {
			t.Fatalf("trial %d: heuristic %v beats exact %v", trial, heur.Objective, exact.Objective)
		}
		if math.Abs(heur.Objective-exact.Objective) < 1e-9 {
			okCount++
		}
	}
	if okCount < 15 {
		t.Fatalf("heuristic matched the optimum on only %d/40 feasible trials", okCount)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	m := ilp.NewModel(true)
	for j := 0; j < 12; j++ {
		m.AddVar("", float64(j%5)-2)
	}
	var coefs []ilp.Coef
	for j := 0; j < 12; j++ {
		coefs = append(coefs, ilp.Coef{Var: j, Val: 1})
	}
	m.AddRow("", coefs, ilp.LE, 6)
	a := Solve(m, Options{Seed: 99})
	b := Solve(m, Options{Seed: 99})
	if a.Feasible != b.Feasible || a.Objective != b.Objective || a.Flips != b.Flips {
		t.Fatal("not deterministic per seed")
	}
}

func TestTargetStopsEarly(t *testing.T) {
	m := ilp.NewModel(false)
	for j := 0; j < 10; j++ {
		m.AddVar("", 1)
	}
	var coefs []ilp.Coef
	for j := 0; j < 10; j++ {
		coefs = append(coefs, ilp.Coef{Var: j, Val: 1})
	}
	m.AddRow("", coefs, ilp.GE, 3)
	res := Solve(m, Options{Seed: 7, Target: 10, TargetSet: true})
	if !res.Feasible {
		t.Fatal("target solve found nothing")
	}
	// Any feasible point has objective ≤ 10, so the very first feasible
	// point should have stopped the search.
	if res.Objective > 10 {
		t.Fatalf("objective = %v", res.Objective)
	}
}

func TestInfeasibleEmptyRow(t *testing.T) {
	m := ilp.NewModel(false)
	m.AddVar("x", 1)
	m.AddRow("impossible", nil, ilp.GE, 1) // 0 ≥ 1
	res := Solve(m, Options{Seed: 1, MaxFlips: 1000})
	if res.Feasible {
		t.Fatal("found solution to structurally infeasible model")
	}
}

func TestStatsPopulated(t *testing.T) {
	m := ilp.NewModel(false)
	x := m.AddVar("x", 1)
	m.AddRow("", []ilp.Coef{{Var: x, Val: 1}}, ilp.GE, 1)
	res := Solve(m, Options{Seed: 2})
	if res.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
	if !res.Feasible || res.Solution[x] != 1 {
		t.Fatalf("res = %+v", res)
	}
}

// On a pure set-cover model the heuristic should reach a near-optimal
// cover quickly — this mirrors its role on the paper's large instances.
func TestSetCoverQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := ilp.NewModel(false)
	const nSets, nElems = 30, 40
	for j := 0; j < nSets; j++ {
		m.AddVar("", 1)
	}
	for e := 0; e < nElems; e++ {
		var coefs []ilp.Coef
		for j := 0; j < nSets; j++ {
			if rng.Intn(5) == 0 {
				coefs = append(coefs, ilp.Coef{Var: j, Val: 1})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, ilp.Coef{Var: rng.Intn(nSets), Val: 1})
		}
		m.AddRow("", coefs, ilp.GE, 1)
	}
	heur := Solve(m, Options{Seed: 21})
	if !heur.Feasible {
		t.Fatal("no cover found")
	}
	exact := ilp.Solve(m, ilp.Options{})
	if exact.Status != ilp.Optimal {
		t.Fatalf("exact status = %v", exact.Status)
	}
	if heur.Objective > exact.Objective*2 {
		t.Fatalf("heuristic cover %v far from optimal %v", heur.Objective, exact.Objective)
	}
}
