// Package heurilp implements a heuristic iterative-improvement solver for
// 0-1 integer linear programs, standing in for the unpublished heuristic
// ILP solver the paper cites as reference [6] and uses for its large
// benchmark instances (§8).
//
// The algorithm is a WalkSAT-style local search generalized to linear
// pseudo-Boolean rows (in the spirit of Walser's WSAT(OIP)): starting from
// a warm start or a random point, it repeatedly selects a violated row and
// flips the variable that most reduces total violation (with occasional
// noise moves); once feasible, it performs objective-improving flips that
// preserve feasibility and records the best feasible point seen.
package heurilp

import (
	"math"
	"math/rand"
	"time"

	"ilpec/internal/ilp"
)

// Options configures the local search. The zero value gives defaults.
type Options struct {
	// Seed drives all random choices (deterministic per seed).
	Seed int64
	// MaxFlips bounds the total number of flips (0 = 200k + 200·vars).
	MaxFlips int64
	// Noise is the probability of a random walk move (0 = default 0.2).
	Noise float64
	// Restarts is the number of random restarts (0 = default 5).
	Restarts int
	// WarmStart seeds the first restart.
	WarmStart ilp.Solution
	// Target, if non-zero under minimization (or any value via TargetSet),
	// stops the search once a feasible solution at least as good is found.
	Target    float64
	TargetSet bool
}

// Result is the outcome of the local search.
type Result struct {
	// Feasible reports whether any feasible solution was found.
	Feasible bool
	// Objective is the best feasible objective (valid when Feasible).
	Objective float64
	// Solution is the best feasible point (valid when Feasible).
	Solution ilp.Solution
	// Flips is the number of flips performed.
	Flips int64
	// Runtime is the wall-clock duration of the search.
	Runtime time.Duration
}

// state holds incremental search structures for one restart.
type state struct {
	m        *ilp.Model
	sol      ilp.Solution
	activity []float64
	violated []int // indices of violated rows
	vpos     []int // position of row in violated, -1 if satisfied
	varRows  [][]int32
}

// Solve runs the iterative-improvement search on m.
func Solve(m *ilp.Model, opts Options) Result {
	start := time.Now()
	res := solve(m, opts)
	res.Runtime = time.Since(start)
	return res
}

func solve(m *ilp.Model, opts Options) Result {
	n := m.NumVars()
	maxFlips := opts.MaxFlips
	if maxFlips == 0 {
		maxFlips = int64(200_000 + 200*n)
	}
	noise := opts.Noise
	if noise == 0 {
		noise = 0.2
	}
	restarts := opts.Restarts
	if restarts == 0 {
		restarts = 5
	}
	rng := rand.New(rand.NewSource(opts.Seed + 12345))

	varRows := make([][]int32, n)
	for i := 0; i < m.NumRows(); i++ {
		for _, c := range m.RowAt(i).Coefs {
			varRows[c.Var] = append(varRows[c.Var], int32(i))
		}
	}

	var best ilp.Solution
	bestObj := m.WorstObjective()
	var flips int64

	budget := maxFlips / int64(restarts)
	if budget == 0 {
		budget = maxFlips
	}

	for r := 0; r < restarts; r++ {
		st := &state{m: m, varRows: varRows}
		st.sol = make(ilp.Solution, n)
		for j := 0; j < n; j++ {
			if r == 0 && opts.WarmStart != nil && j < len(opts.WarmStart) {
				st.sol[j] = opts.WarmStart[j]
			} else {
				st.sol[j] = int8(rng.Intn(2))
			}
		}
		st.init()

		stall := int64(0)
		for step := int64(0); step < budget; step++ {
			if len(st.violated) == 0 {
				z := m.Objective(st.sol)
				if best == nil || m.Better(z, bestObj) {
					best = st.sol.Clone()
					bestObj = z
					stall = 0
					if opts.TargetSet && !m.Better(opts.Target, bestObj) {
						return Result{Feasible: true, Objective: bestObj, Solution: best, Flips: flips}
					}
				}
				// Feasible: attempt an objective-improving feasible flip.
				j := st.improvingFlip(rng)
				if j < 0 {
					// Local optimum: perturb a few variables to escape.
					stall++
					if stall > 3 {
						break // restart
					}
					for k := 0; k < 1+n/20; k++ {
						st.flip(rng.Intn(n))
						flips++
					}
					continue
				}
				st.flip(j)
				flips++
				continue
			}
			// Violated: repair move on a random violated row.
			ri := st.violated[rng.Intn(len(st.violated))]
			row := m.RowAt(ri)
			if len(row.Coefs) == 0 {
				break // structurally violated empty row: restart is futile
			}
			var j int
			if rng.Float64() < noise {
				j = row.Coefs[rng.Intn(len(row.Coefs))].Var
			} else {
				j = st.bestRepairVar(row, rng)
			}
			st.flip(j)
			flips++
		}
	}
	if best == nil {
		return Result{Feasible: false, Flips: flips}
	}
	return Result{Feasible: true, Objective: bestObj, Solution: best, Flips: flips}
}

func (st *state) init() {
	m := st.m
	st.activity = make([]float64, m.NumRows())
	st.vpos = make([]int, m.NumRows())
	st.violated = st.violated[:0]
	for i := 0; i < m.NumRows(); i++ {
		row := m.RowAt(i)
		st.activity[i] = row.Activity(st.sol)
		st.vpos[i] = -1
		if !satisfiedAct(row, st.activity[i]) {
			st.vpos[i] = len(st.violated)
			st.violated = append(st.violated, i)
		}
	}
}

func satisfiedAct(r ilp.Row, act float64) bool {
	switch r.Sense {
	case ilp.LE:
		return act <= r.RHS+1e-9
	case ilp.GE:
		return act >= r.RHS-1e-9
	default:
		return math.Abs(act-r.RHS) <= 1e-9
	}
}

func violationAct(r ilp.Row, act float64) float64 {
	switch r.Sense {
	case ilp.LE:
		if act > r.RHS {
			return act - r.RHS
		}
	case ilp.GE:
		if act < r.RHS {
			return r.RHS - act
		}
	default:
		return math.Abs(act - r.RHS)
	}
	return 0
}

// flip toggles variable j, updating activities and the violated set.
func (st *state) flip(j int) {
	delta := 1.0
	if st.sol[j] == 1 {
		delta = -1.0
		st.sol[j] = 0
	} else {
		st.sol[j] = 1
	}
	for _, ri := range st.varRows[j] {
		row := st.m.RowAt(int(ri))
		var a float64
		for _, c := range row.Coefs {
			if c.Var == j {
				a += c.Val
			}
		}
		st.activity[ri] += delta * a
		sat := satisfiedAct(row, st.activity[ri])
		switch {
		case sat && st.vpos[ri] >= 0:
			p := st.vpos[ri]
			last := st.violated[len(st.violated)-1]
			st.violated[p] = last
			st.vpos[last] = p
			st.violated = st.violated[:len(st.violated)-1]
			st.vpos[ri] = -1
		case !sat && st.vpos[ri] < 0:
			st.vpos[ri] = len(st.violated)
			st.violated = append(st.violated, int(ri))
		}
	}
}

// violationDelta computes the change in total violation if j flips.
func (st *state) violationDelta(j int) float64 {
	delta := 1.0
	if st.sol[j] == 1 {
		delta = -1.0
	}
	d := 0.0
	for _, ri := range st.varRows[j] {
		row := st.m.RowAt(int(ri))
		var a float64
		for _, c := range row.Coefs {
			if c.Var == j {
				a += c.Val
			}
		}
		oldV := violationAct(row, st.activity[ri])
		newV := violationAct(row, st.activity[ri]+delta*a)
		d += newV - oldV
	}
	return d
}

// bestRepairVar returns the variable of the row whose flip minimizes
// (violation delta, objective worsening); ties break randomly.
func (st *state) bestRepairVar(row ilp.Row, rng *rand.Rand) int {
	bestJ := -1
	bestScore := math.Inf(1)
	bestTies := 0
	for _, c := range row.Coefs {
		j := c.Var
		vd := st.violationDelta(j)
		// Secondary criterion: objective movement (scaled small so
		// feasibility dominates).
		od := st.m.Obj(j)
		if st.sol[j] == 1 {
			od = -od
		}
		if st.m.Maximize {
			od = -od
		}
		score := vd + 1e-3*od
		switch {
		case score < bestScore-1e-12:
			bestJ, bestScore, bestTies = j, score, 1
		case score <= bestScore+1e-12:
			bestTies++
			if rng.Intn(bestTies) == 0 {
				bestJ = j
			}
		}
	}
	return bestJ
}

// improvingFlip returns a variable whose flip strictly improves the
// objective while keeping every row satisfied, or -1 if none exists.
func (st *state) improvingFlip(rng *rand.Rand) int {
	n := len(st.sol)
	offset := rng.Intn(n)
	for k := 0; k < n; k++ {
		j := (offset + k) % n
		c := st.m.Obj(j)
		if c == 0 {
			continue
		}
		// Objective delta of flipping j.
		od := c
		if st.sol[j] == 1 {
			od = -od
		}
		improving := od < 0
		if st.m.Maximize {
			improving = od > 0
		}
		if !improving {
			continue
		}
		if st.violationDelta(j) <= 0 && st.staysFeasible(j) {
			return j
		}
	}
	return -1
}

// staysFeasible checks whether flipping j keeps all rows of j satisfied.
func (st *state) staysFeasible(j int) bool {
	delta := 1.0
	if st.sol[j] == 1 {
		delta = -1.0
	}
	for _, ri := range st.varRows[j] {
		row := st.m.RowAt(int(ri))
		var a float64
		for _, c := range row.Coefs {
			if c.Var == j {
				a += c.Val
			}
		}
		if !satisfiedAct(row, st.activity[ri]+delta*a) {
			return false
		}
	}
	return true
}
