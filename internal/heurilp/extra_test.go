package heurilp

import (
	"testing"

	"ilpec/internal/ilp"
)

func TestImprovingFlipsMaximize(t *testing.T) {
	// max x + y with no constraints: local search must climb to (1,1).
	m := ilp.NewModel(true)
	m.AddVar("x", 1)
	m.AddVar("y", 1)
	res := Solve(m, Options{Seed: 4})
	if !res.Feasible || res.Objective != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestImprovingFlipsMinimize(t *testing.T) {
	// min x + y with x + y ≥ 1: optimum 1.
	m := ilp.NewModel(false)
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 1)
	m.AddRow("", []ilp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, ilp.GE, 1)
	res := Solve(m, Options{Seed: 4})
	if !res.Feasible || res.Objective != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTargetMaximize(t *testing.T) {
	m := ilp.NewModel(true)
	for j := 0; j < 8; j++ {
		m.AddVar("", 1)
	}
	res := Solve(m, Options{Seed: 9, Target: 3, TargetSet: true})
	if !res.Feasible || res.Objective < 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEqualityRows(t *testing.T) {
	// x + y = 1 exactly.
	m := ilp.NewModel(false)
	x := m.AddVar("x", 0)
	y := m.AddVar("y", 0)
	m.AddRow("", []ilp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, ilp.EQ, 1)
	res := Solve(m, Options{Seed: 2})
	if !res.Feasible {
		t.Fatal("no solution")
	}
	if res.Solution[x]+res.Solution[y] != 1 {
		t.Fatalf("equality violated: %v", res.Solution)
	}
}

func TestNegativeCoefficients(t *testing.T) {
	// -2x + y ≤ -1 forces x=1 (y free-ish).
	m := ilp.NewModel(false)
	x := m.AddVar("x", 0)
	m.AddVar("y", 1)
	m.AddRow("", []ilp.Coef{{Var: x, Val: -2}, {Var: 1, Val: 1}}, ilp.LE, -1)
	res := Solve(m, Options{Seed: 6})
	if !res.Feasible || res.Solution[x] != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFlipBudgetRespected(t *testing.T) {
	// An over-constrained (infeasible) model: search must stop by budget.
	m := ilp.NewModel(false)
	x := m.AddVar("x", 0)
	m.AddRow("", []ilp.Coef{{Var: x, Val: 1}}, ilp.GE, 1)
	m.AddRow("", []ilp.Coef{{Var: x, Val: 1}}, ilp.LE, 0)
	res := Solve(m, Options{Seed: 3, MaxFlips: 500, Restarts: 2})
	if res.Feasible {
		t.Fatal("found solution to infeasible model")
	}
	if res.Flips > 5000 {
		t.Fatalf("budget blown: %d flips", res.Flips)
	}
}
