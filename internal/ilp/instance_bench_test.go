package ilp

import (
	"fmt"
	"testing"
)

// The EC re-solve shape: a large, settled model — a unit-cover core that
// propagation decides outright, the bulk of a real EC instance that the
// change batch does not touch — plus named LE budget rows whose
// right-hand sides wobble between solves. This is the
// engineering-change pattern Instance targets: nearly all of the model
// survives from one solve to the next, so the per-solve cost should be
// re-deciding, not rebuilding the carried-over structure (model
// construction, row normalization, kernel indexes) that the scratch
// path pays every time. LE rows are deliberate: they keep the RHS edits
// on the retained-kernel fast path (GE/EQ rows crossing the unit
// boundary force a kernel rebuild).
func benchECModel(budget float64) *Model {
	m := benchSetCover(200, 400, 1, 7) // forced core: 200 unit-cover columns
	for w := 0; w < 3; w++ {
		coefs := make([]Coef, 0, 10)
		for j := w * 10; j < (w+1)*10; j++ {
			coefs = append(coefs, Coef{j, 1})
		}
		m.AddRow(fmt.Sprintf("budget_%d", w), coefs, LE, budget)
	}
	return m
}

// benchECBudget is the alternating edit schedule both arms replay.
func benchECBudget(i int) float64 { return 10 + float64(i%2) }

// BenchmarkInstanceResolve re-solves the EC shape through one persistent
// Instance: each iteration edits the budget rows in place and Resolve
// reuses the retained kernel, trail, and warm start.
func BenchmarkInstanceResolve(b *testing.B) {
	opts := Options{}
	inst := NewInstance(benchECModel(benchECBudget(0)))
	if res := inst.Resolve(opts); res.Status != Optimal {
		b.Fatalf("warmup status %s", res.Status)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget := benchECBudget(i + 1)
		for w := 0; w < 3; w++ {
			if !inst.SetRHS(fmt.Sprintf("budget_%d", w), budget) {
				b.Fatal("budget row lost")
			}
		}
		res = inst.Resolve(opts)
		if res.Status != Optimal {
			b.Fatalf("status %s", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkScratchResolve is the control arm: the identical edit
// schedule served the pre-instance way — rebuild the model and solve
// from scratch every time.
func BenchmarkScratchResolve(b *testing.B) {
	opts := Options{}
	if res := Solve(benchECModel(benchECBudget(0)), opts); res.Status != Optimal {
		b.Fatalf("warmup status %s", res.Status)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(benchECModel(benchECBudget(i+1)), opts)
		if res.Status != Optimal {
			b.Fatalf("status %s", res.Status)
		}
	}
	reportNodes(b, res)
}
