package ilp

import (
	"strings"
	"testing"
)

func TestModelBasics(t *testing.T) {
	m := NewModel(true)
	x := m.AddVar("x", 3)
	y := m.AddVar("", -1)
	if x != 0 || y != 1 || m.NumVars() != 2 {
		t.Fatal("AddVar indices wrong")
	}
	if m.VarName(y) != "x1" {
		t.Fatalf("default name = %q", m.VarName(y))
	}
	m.SetObj(y, 2)
	if m.Obj(y) != 2 {
		t.Fatal("SetObj/Obj mismatch")
	}
	r := m.AddRow("c", []Coef{{x, 1}, {y, 1}}, LE, 1)
	if r != 0 || m.NumRows() != 1 {
		t.Fatal("AddRow index wrong")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRowEvaluation(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 1)
	m.AddRow("", []Coef{{x, 2}, {y, -1}}, LE, 1)
	m.AddRow("", []Coef{{x, 1}, {y, 1}}, GE, 1)
	m.AddRow("", []Coef{{x, 1}}, EQ, 1)

	s := Solution{1, 1}
	r0 := m.RowAt(0)
	if r0.Activity(s) != 1 {
		t.Fatalf("activity = %v", r0.Activity(s))
	}
	if !m.Feasible(s) {
		t.Fatal("s should be feasible")
	}
	if m.Objective(s) != 2 {
		t.Fatalf("objective = %v", m.Objective(s))
	}
	bad := Solution{0, 0}
	if m.Feasible(bad) {
		t.Fatal("bad should violate GE and EQ rows")
	}
	if m.NumViolated(bad) != 2 {
		t.Fatalf("NumViolated = %d, want 2", m.NumViolated(bad))
	}
	if v := m.RowAt(1).Violation(bad); v != 1 {
		t.Fatalf("GE violation = %v", v)
	}
	if v := m.RowAt(2).Violation(bad); v != 1 {
		t.Fatalf("EQ violation = %v", v)
	}
	if m.Feasible(Solution{1}) {
		t.Fatal("length-mismatched solution should be infeasible")
	}
}

func TestBetterAndWorst(t *testing.T) {
	mx := NewModel(true)
	if !mx.Better(2, 1) || mx.Better(1, 2) {
		t.Fatal("maximize Better wrong")
	}
	mn := NewModel(false)
	if !mn.Better(1, 2) || mn.Better(2, 1) {
		t.Fatal("minimize Better wrong")
	}
	if !mx.Better(0, mx.WorstObjective()) || !mn.Better(0, mn.WorstObjective()) {
		t.Fatal("WorstObjective not worst")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 1)
	m.AddRow("r", []Coef{{x, 1}}, LE, 1)
	c := m.Clone()
	c.SetObj(x, 9)
	c.AddRow("r2", []Coef{{x, 1}}, GE, 0)
	c.rows[0].Coefs[0].Val = 5
	if m.Obj(x) != 1 || m.NumRows() != 1 || m.rows[0].Coefs[0].Val != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestValidateCatchesBadRows(t *testing.T) {
	m := NewModel(false)
	m.AddVar("x", 1)
	m.rows = append(m.rows, Row{Coefs: []Coef{{5, 1}}, Sense: LE, RHS: 0})
	if m.Validate() == nil {
		t.Fatal("Validate accepted unknown variable")
	}
}

func TestModelString(t *testing.T) {
	m := NewModel(true)
	x := m.AddVar("x", 1)
	y := m.AddVar("y", -2)
	m.AddRow("c1", []Coef{{x, 1}, {y, 2}}, LE, 3)
	if got := m.String(); !strings.Contains(got, "max") || !strings.Contains(got, "2 vars") {
		t.Fatalf("String = %q", got)
	}
	if got := m.RowString(0); got != "c1: x + 2 y <= 3" {
		t.Fatalf("RowString = %q", got)
	}
	st := m.ComputeStats()
	if st.Vars != 2 || st.Rows != 1 || st.NonZeros != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowStringEdgeCases(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 0)
	y := m.AddVar("y", 0)
	m.AddRow("", []Coef{{x, -1}, {y, -2.5}}, GE, -1)
	if got := m.RowString(0); got != "- x - 2.5 y >= -1" {
		t.Fatalf("RowString = %q", got)
	}
	m.AddRow("empty", nil, LE, 0)
	if got := m.RowString(1); got != "empty: 0 <= 0" {
		t.Fatalf("RowString = %q", got)
	}
}
