package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: negating a GE row into LE form leaves the optimum unchanged.
func TestSenseNormalizationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := NewModel(r.Intn(2) == 0)
		bm := NewModel(a.Maximize)
		for j := 0; j < n; j++ {
			c := float64(r.Intn(9) - 4)
			a.AddVar("", c)
			bm.AddVar("", c)
		}
		for i := 0; i < 1+r.Intn(4); i++ {
			var coefs []Coef
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, float64(r.Intn(7) - 3)})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{0, 1})
			}
			rhs := float64(r.Intn(5) - 1)
			// Model a: GE row. Model b: equivalent negated LE row.
			a.AddRow("", coefs, GE, rhs)
			neg := make([]Coef, len(coefs))
			for k, c := range coefs {
				neg[k] = Coef{c.Var, -c.Val}
			}
			bm.AddRow("", neg, LE, -rhs)
		}
		ra := Solve(a, Options{})
		rb := Solve(bm, Options{})
		if ra.Status != rb.Status {
			return false
		}
		if ra.Status == Optimal && math.Abs(ra.Objective-rb.Objective) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: a feasible warm start never worsens the reported optimum, and
// the solve is deterministic.
func TestWarmStartProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, 3+r.Intn(6), 1+r.Intn(4))
		base := Solve(m, Options{})
		again := Solve(m, Options{})
		if base.Status != again.Status || base.Nodes != again.Nodes {
			return false // nondeterminism
		}
		if base.Status != Optimal {
			return true
		}
		warm := Solve(m, Options{WarmStart: base.Solution})
		if warm.Status != Optimal {
			return false
		}
		return math.Abs(warm.Objective-base.Objective) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cover-aware bound never prunes the true optimum — compare
// against enumeration on pure set-cover models.
func TestCoverBoundSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nSets := 3 + r.Intn(7)
		nElems := 2 + r.Intn(8)
		m := NewModel(false)
		for j := 0; j < nSets; j++ {
			m.AddVar("", 1+float64(r.Intn(3)))
		}
		for e := 0; e < nElems; e++ {
			var coefs []Coef
			for j := 0; j < nSets; j++ {
				if r.Intn(3) == 0 {
					coefs = append(coefs, Coef{j, 1})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{r.Intn(nSets), 1})
			}
			m.AddRow("", coefs, GE, 1)
		}
		want := Enumerate(m)
		got := Solve(m, Options{})
		if got.Status != want.Status {
			return false
		}
		return want.Status != Optimal || math.Abs(got.Objective-want.Objective) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: EQ-derived cover rows (one-hot constraints) keep the solver
// exact — mimics the coloring model shape.
func TestOneHotCoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		groups := 2 + r.Intn(3)
		per := 2 + r.Intn(3)
		m := NewModel(false)
		for g := 0; g < groups; g++ {
			for k := 0; k < per; k++ {
				m.AddVar("", float64(r.Intn(5)))
			}
		}
		for g := 0; g < groups; g++ {
			var coefs []Coef
			for k := 0; k < per; k++ {
				coefs = append(coefs, Coef{g*per + k, 1})
			}
			m.AddRow("", coefs, EQ, 1)
		}
		// A few conflict rows.
		for i := 0; i < r.Intn(4); i++ {
			a := r.Intn(groups * per)
			b := r.Intn(groups * per)
			if a == b {
				continue
			}
			m.AddRow("", []Coef{{a, 1}, {b, 1}}, LE, 1)
		}
		want := Enumerate(m)
		got := Solve(m, Options{})
		if got.Status != want.Status {
			return false
		}
		return want.Status != Optimal || math.Abs(got.Objective-want.Objective) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
