package ilp

import (
	"math/rand"
	"testing"
)

// benchSetCover builds a seeded random set-cover model: nElems rows of
// Σ x_j ≥ 1 over nSets unit-cost columns — the covering structure the
// SAT encoding of §3 produces, and the shape the incremental kernel's
// cover-count maintenance targets.
func benchSetCover(nSets, nElems, perElem int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(false)
	for j := 0; j < nSets; j++ {
		m.AddVar("", 1+float64(rng.Intn(3)))
	}
	for e := 0; e < nElems; e++ {
		coefs := make([]Coef, 0, perElem)
		seen := make(map[int]bool, perElem)
		for len(coefs) < perElem {
			j := rng.Intn(nSets)
			if seen[j] {
				continue
			}
			seen[j] = true
			coefs = append(coefs, Coef{j, 1})
		}
		m.AddRow("", coefs, GE, 1)
	}
	return m
}

// benchPacked builds a model with general ± coefficients and mixed senses:
// the propagation-heavy shape without covering structure.
func benchPacked(nVars, nRows int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(rng.Intn(2) == 0)
	for j := 0; j < nVars; j++ {
		m.AddVar("", float64(rng.Intn(21)-10))
	}
	for i := 0; i < nRows; i++ {
		var coefs []Coef
		for j := 0; j < nVars; j++ {
			if rng.Intn(3) == 0 {
				coefs = append(coefs, Coef{j, float64(rng.Intn(9) - 4)})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{rng.Intn(nVars), 1})
		}
		m.AddRow("", coefs, Sense(rng.Intn(3)), float64(rng.Intn(7)-2))
	}
	return m
}

func reportNodes(b *testing.B, res Result) {
	b.Helper()
	if res.Nodes > 0 {
		b.ReportMetric(float64(res.Nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/sec")
	}
}

// BenchmarkSolverSetCover is the covering-structure bench: cover-greedy
// branching plus the counting bound, the hot path of every Table-1 solve.
func BenchmarkSolverSetCover(b *testing.B) {
	m := benchSetCover(40, 80, 3, 42)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverSetCoverLarge stresses the propagation worklist on a
// bigger covering instance.
func BenchmarkSolverSetCoverLarge(b *testing.B) {
	m := benchSetCover(48, 120, 4, 7)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverPacked exercises the general propagate/assign path with
// mixed-sign coefficients and no covering structure.
func BenchmarkSolverPacked(b *testing.B) {
	m := benchPacked(30, 46, 11)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status == Unknown {
			b.Fatal("unexpected status")
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverLPBound exercises the LP relaxation path: with the shared
// node solve and warm-started simplex this is where reuse pays most.
func BenchmarkSolverLPBound(b *testing.B) {
	m := benchSetCover(25, 50, 3, 13)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Bounding: LPBound, Branching: BranchLPFractional})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverWarmStart measures the EC re-solve pattern: solving a
// model whose optimum is already known as the warm start.
func BenchmarkSolverWarmStart(b *testing.B) {
	m := benchSetCover(40, 80, 3, 42)
	base := Solve(m, Options{})
	if base.Status != Optimal {
		b.Fatalf("status %v", base.Status)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{WarmStart: base.Solution})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}
