package ilp

import (
	"math/rand"
	"testing"
)

// benchSetCover builds a seeded random set-cover model: nElems rows of
// Σ x_j ≥ 1 over nSets unit-cost columns — the covering structure the
// SAT encoding of §3 produces, and the shape the incremental kernel's
// cover-count maintenance targets.
func benchSetCover(nSets, nElems, perElem int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(false)
	for j := 0; j < nSets; j++ {
		m.AddVar("", 1+float64(rng.Intn(3)))
	}
	for e := 0; e < nElems; e++ {
		coefs := make([]Coef, 0, perElem)
		seen := make(map[int]bool, perElem)
		for len(coefs) < perElem {
			j := rng.Intn(nSets)
			if seen[j] {
				continue
			}
			seen[j] = true
			coefs = append(coefs, Coef{j, 1})
		}
		m.AddRow("", coefs, GE, 1)
	}
	return m
}

// benchPacked builds a model with general ± coefficients and mixed senses:
// the propagation-heavy shape without covering structure.
func benchPacked(nVars, nRows int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(rng.Intn(2) == 0)
	for j := 0; j < nVars; j++ {
		m.AddVar("", float64(rng.Intn(21)-10))
	}
	for i := 0; i < nRows; i++ {
		var coefs []Coef
		for j := 0; j < nVars; j++ {
			if rng.Intn(3) == 0 {
				coefs = append(coefs, Coef{j, float64(rng.Intn(9) - 4)})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{rng.Intn(nVars), 1})
		}
		m.AddRow("", coefs, Sense(rng.Intn(3)), float64(rng.Intn(7)-2))
	}
	return m
}

func reportNodes(b *testing.B, res Result) {
	b.Helper()
	if res.Nodes > 0 {
		b.ReportMetric(float64(res.Nodes)*float64(b.N)/b.Elapsed().Seconds(), "nodes/sec")
	}
}

// BenchmarkSolverSetCover is the covering-structure bench: cover-greedy
// branching plus the counting bound, the hot path of every Table-1 solve.
func BenchmarkSolverSetCover(b *testing.B) {
	m := benchSetCover(40, 80, 3, 42)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverSetCoverLarge stresses the propagation worklist on a
// bigger covering instance.
func BenchmarkSolverSetCoverLarge(b *testing.B) {
	m := benchSetCover(48, 120, 4, 7)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverPacked exercises the general propagate/assign path with
// mixed-sign coefficients and no covering structure.
func BenchmarkSolverPacked(b *testing.B) {
	m := benchPacked(30, 46, 11)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status == Unknown {
			b.Fatal("unexpected status")
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverLPBound exercises the LP relaxation path: with the shared
// node solve and warm-started simplex this is where reuse pays most.
func BenchmarkSolverLPBound(b *testing.B) {
	m := benchSetCover(25, 50, 3, 13)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Bounding: LPBound, Branching: BranchLPFractional})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverWarmStart measures the EC re-solve pattern: solving a
// model whose optimum is already known as the warm start.
func BenchmarkSolverWarmStart(b *testing.B) {
	m := benchSetCover(40, 80, 3, 42)
	base := Solve(m, Options{})
	if base.Status != Optimal {
		b.Fatalf("status %v", base.Status)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{WarmStart: base.Solution})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// benchRedundant builds the EC-shaped presolve target: a set-cover core
// buried under the noise a change-churned encoding accumulates —
// duplicated cover rows, dominated decoy columns, forced variables, and
// redundant capacity rows. Presolve strips all of it; the raw kernel pays
// for it at every node.
func benchRedundant(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := benchSetCover(40, 80, 3, seed)
	// Duplicate every cover row twice more (identical residuals: the
	// cover bound scans them all, presolve keeps one).
	nRows := m.NumRows()
	for i := 0; i < nRows; i++ {
		r := m.RowAt(i)
		m.AddRow("", r.Coefs, r.Sense, r.RHS)
		m.AddRow("", r.Coefs, r.Sense, r.RHS)
	}
	// Dominated decoy columns: positive cost, only positive coefficients
	// in LE rows — presolve fixes them to 0.
	first := m.NumVars()
	for j := 0; j < 40; j++ {
		m.AddVar("", 2+float64(rng.Intn(3)))
	}
	for i := 0; i < 20; i++ {
		coefs := make([]Coef, 0, 4)
		for k := 0; k < 4; k++ {
			coefs = append(coefs, Coef{first + rng.Intn(40), 1})
		}
		m.AddRow("", coefs, LE, 3)
	}
	// Forced variables plus rows their fixing makes redundant.
	forced := m.NumVars()
	for j := 0; j < 10; j++ {
		m.AddVar("", 1)
		m.AddRow("", []Coef{{forced + j, 1}}, GE, 1)
		m.AddRow("", []Coef{{forced + j, 5}, {rng.Intn(40), 1}}, LE, 6)
	}
	return m
}

// BenchmarkSolverPresolveOff is the raw-kernel control for the presolve
// benches: same redundancy-laden model, no reductions.
func BenchmarkSolverPresolveOff(b *testing.B) {
	m := benchRedundant(19)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverPresolveOn runs the same model through the presolve
// pass: duplicate rows collapse, decoys and forced variables leave the
// model, and every node of the remaining search gets cheaper.
func BenchmarkSolverPresolveOn(b *testing.B) {
	m := benchRedundant(19)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Presolve: true})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverPresolveCuts adds the cut layer on top: cover cuts from
// the knapsack rows and clique cuts from the conflict graph, separated
// fresh each solve (the pool-retained path is BenchmarkSolverCutPoolReuse).
func BenchmarkSolverPresolveCuts(b *testing.B) {
	m := benchRedundant(19)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Presolve: true, Cuts: true})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverCutPoolReuse measures the EC re-solve path: a retained
// pool answers separation for unchanged rows, so only the pool lookup is
// paid after the first solve.
func BenchmarkSolverCutPoolReuse(b *testing.B) {
	m := benchRedundant(19)
	pool := NewCutPool()
	if res := Solve(m, Options{Presolve: true, Cuts: true, CutPool: pool}); res.Status != Optimal {
		b.Fatalf("status %v", res.Status)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Presolve: true, Cuts: true, CutPool: pool})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkPresolvePass isolates the cost of the reduction fixpoint
// itself (no search).
func BenchmarkPresolvePass(b *testing.B) {
	m := benchRedundant(19)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := presolveModel(m)
		if p.infeasible {
			b.Fatal("infeasible")
		}
	}
}

// benchCliqued builds the conflict-graph shape where clique cuts shine: a
// weighted selection over groups of mutually exclusive options encoded as
// pairwise-conflict rows (one-of-n structure a netlist or coloring
// encoding produces). The LP relaxation of the pairwise rows is weak
// (x = 1/2 everywhere); the separated clique cut Σ_group x ≤ 1 closes it.
func benchCliqued() *Model {
	m := NewModel(true)
	const groups, size = 8, 5
	for g := 0; g < groups; g++ {
		for i := 0; i < size; i++ {
			m.AddVar("", 1+float64(i%3))
		}
	}
	for g := 0; g < groups; g++ {
		base := g * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				m.AddRow("", []Coef{{base + i, 1}, {base + j, 1}}, LE, 1)
			}
		}
	}
	for g := 0; g+1 < groups; g++ {
		var coefs []Coef
		for i := 0; i < size; i++ {
			coefs = append(coefs, Coef{g*size + i, 1})
		}
		m.AddRow("", coefs, GE, 1)
	}
	return m
}

// BenchmarkSolverCutsOff is the control: LP-bounded search over the
// pairwise-conflict model with no clique cuts (thousands of nodes at
// x = 1/2 fractional points).
func BenchmarkSolverCutsOff(b *testing.B) {
	m := benchCliqued()
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Bounding: LPBound, Branching: BranchLPFractional})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}

// BenchmarkSolverCutsOn separates the clique cuts first: the same search
// needs ~20× fewer nodes because each group's LP bound is exact.
func BenchmarkSolverCutsOn(b *testing.B) {
	m := benchCliqued()
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = Solve(m, Options{Bounding: LPBound, Branching: BranchLPFractional, Cuts: true})
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
	reportNodes(b, res)
}
