package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Differential tests for the incremental kernel: the indexed/worklist
// engine must be observationally identical to exhaustive enumeration on
// status and objective, across bounding modes, warm starts, limits, and
// the parallel root search.

// diffCheck asserts that opts solves m to the same status/objective as the
// enumeration oracle.
func diffCheck(t *testing.T, trial int, m *Model, opts Options) {
	t.Helper()
	want := Enumerate(m)
	got := Solve(m, opts)
	if got.Status != want.Status {
		t.Fatalf("trial %d: got %v want %v\nmodel: %v", trial, got.Status, want.Status, m)
	}
	if want.Status == Optimal {
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("trial %d: got obj %v want %v", trial, got.Objective, want.Objective)
		}
		if !m.Feasible(got.Solution) {
			t.Fatalf("trial %d: claimed optimum is infeasible", trial)
		}
	}
}

// TestDifferentialRandomModels runs the kernel against enumeration on 120
// seeded random models with general senses and mixed-sign coefficients.
func TestDifferentialRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < 120; trial++ {
		m := randomModel(rng, 2+rng.Intn(9), 1+rng.Intn(7))
		diffCheck(t, trial, m, Options{})
	}
}

// TestDifferentialCoverModels focuses on covering structure, where the
// incremental cover counts and the counting bound are load-bearing.
func TestDifferentialCoverModels(t *testing.T) {
	rng := rand.New(rand.NewSource(813))
	for trial := 0; trial < 120; trial++ {
		nSets := 3 + rng.Intn(8)
		nElems := 2 + rng.Intn(9)
		m := NewModel(false)
		for j := 0; j < nSets; j++ {
			m.AddVar("", float64(rng.Intn(5)-1)) // some zero/negative costs
		}
		for e := 0; e < nElems; e++ {
			var coefs []Coef
			for j := 0; j < nSets; j++ {
				if rng.Intn(3) == 0 {
					coefs = append(coefs, Coef{j, 1})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{rng.Intn(nSets), 1})
			}
			m.AddRow("", coefs, GE, 1)
		}
		diffCheck(t, trial, m, Options{})
	}
}

// TestDifferentialLPBoundWarm exercises the reused relaxation and the
// warm-started simplex across many nodes of many models.
func TestDifferentialLPBoundWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(821))
	warmHits := int64(0)
	for trial := 0; trial < 80; trial++ {
		m := randomModel(rng, 2+rng.Intn(8), 1+rng.Intn(6))
		want := Enumerate(m)
		for _, br := range []Branching{BranchMaxObj, BranchLPFractional} {
			got := Solve(m, Options{Bounding: LPBound, Branching: br})
			if got.Status != want.Status {
				t.Fatalf("trial %d br %d: got %v want %v", trial, br, got.Status, want.Status)
			}
			if want.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d br %d: got obj %v want %v", trial, br, got.Objective, want.Objective)
			}
			warmHits += got.LPWarmHits
		}
	}
	if warmHits == 0 {
		t.Fatal("LP warm-start path never taken across the differential sweep")
	}
}

// TestDifferentialWarmStartPath feeds the solver its own optimum and a
// deliberately infeasible warm start; neither may change the answer.
func TestDifferentialWarmStartPath(t *testing.T) {
	rng := rand.New(rand.NewSource(823))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng, 3+rng.Intn(7), 1+rng.Intn(5))
		want := Enumerate(m)
		if want.Status != Optimal {
			continue
		}
		diffCheck(t, trial, m, Options{WarmStart: want.Solution})
		bad := make(Solution, m.NumVars())
		for j := range bad {
			bad[j] = int8(rng.Intn(2))
		}
		diffCheck(t, trial, m, Options{WarmStart: bad})
	}
}

// TestDifferentialTimeLimitPath asserts limit-stopped solves degrade to
// Feasible/Unknown but never report a wrong optimum, and that a generous
// limit still reaches the oracle answer.
func TestDifferentialTimeLimitPath(t *testing.T) {
	rng := rand.New(rand.NewSource(827))
	for trial := 0; trial < 40; trial++ {
		m := randomModel(rng, 2+rng.Intn(8), 1+rng.Intn(6))
		want := Enumerate(m)
		got := Solve(m, Options{TimeLimit: time.Minute})
		if got.Status != want.Status {
			t.Fatalf("trial %d: got %v want %v", trial, got.Status, want.Status)
		}
		tight := Solve(m, Options{TimeLimit: time.Nanosecond, MaxNodes: 4})
		switch tight.Status {
		case Optimal, Infeasible:
			if tight.Status != want.Status {
				t.Fatalf("trial %d: limited solve claimed %v, oracle %v", trial, tight.Status, want.Status)
			}
			if want.Status == Optimal && math.Abs(tight.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d: limited solve obj %v, oracle %v", trial, tight.Objective, want.Objective)
			}
		case Feasible:
			if want.Status == Infeasible {
				t.Fatalf("trial %d: feasible point on infeasible model", trial)
			}
			if !m.Feasible(tight.Solution) {
				t.Fatalf("trial %d: reported infeasible point", trial)
			}
		}
	}
}

// TestWorkersMatchSerial is the parallel differential: Workers > 1 must
// return the same status and objective as the serial path.
func TestWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(829))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng, 4+rng.Intn(10), 1+rng.Intn(8))
		serial := Solve(m, Options{})
		for _, w := range []int{2, 4} {
			par := Solve(m, Options{Workers: w})
			if par.Status != serial.Status {
				t.Fatalf("trial %d workers=%d: got %v serial %v", trial, w, par.Status, serial.Status)
			}
			if serial.Status == Optimal {
				if math.Abs(par.Objective-serial.Objective) > 1e-6 {
					t.Fatalf("trial %d workers=%d: obj %v serial %v", trial, w, par.Objective, serial.Objective)
				}
				if !m.Feasible(par.Solution) {
					t.Fatalf("trial %d workers=%d: infeasible optimum", trial, w)
				}
			}
			// Workers reports how the answer was produced: w when the
			// parallel phase ran, 1 when the root dive or serial fallback
			// already finished the tree.
			if par.Workers != w && par.Workers != 1 {
				t.Fatalf("trial %d: Workers = %d, want %d or 1", trial, par.Workers, w)
			}
		}
	}
}

// TestWorkersCoverModel checks the parallel search on the covering shape
// with warm starts — the EC re-solve pattern.
func TestWorkersCoverModel(t *testing.T) {
	m := benchSetCover(30, 60, 3, 99)
	serial := Solve(m, Options{})
	if serial.Status != Optimal {
		t.Fatalf("serial status %v", serial.Status)
	}
	par := Solve(m, Options{Workers: 4, WarmStart: serial.Solution})
	if par.Status != Optimal {
		t.Fatalf("parallel status %v", par.Status)
	}
	if math.Abs(par.Objective-serial.Objective) > 1e-9 {
		t.Fatalf("parallel obj %v, serial %v", par.Objective, serial.Objective)
	}
	if !m.Feasible(par.Solution) {
		t.Fatal("parallel optimum infeasible")
	}
}

// TestRowScansSavedReported asserts the watched-slack counter surfaces
// through Result.
func TestRowScansSavedReported(t *testing.T) {
	m := benchSetCover(20, 40, 3, 5)
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.RowScansSaved == 0 {
		t.Fatal("watched-slack early exit never fired on a covering model")
	}
	if res.Workers != 1 {
		t.Fatalf("serial Workers = %d", res.Workers)
	}
}
