// Package ilp provides 0-1 integer linear programming: a model type, an
// exact branch-and-bound solver with pseudo-Boolean propagation and
// optional LP-relaxation bounding, warm starts, an exhaustive reference
// optimizer, and a small text format.
//
// It stands in for CPLEX in the paper's flow (§4, §8): every engineering-
// change formulation — the set-cover SAT encoding, the enabling-EC
// constraints, the preserving-EC objective — is solved through this
// package.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sense is a row comparison sense.
type Sense int8

const (
	// LE is Σ a_j x_j ≤ b.
	LE Sense = iota
	// GE is Σ a_j x_j ≥ b.
	GE
	// EQ is Σ a_j x_j = b.
	EQ
)

// String renders the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Coef is a sparse row coefficient: 0-based variable index and value.
type Coef struct {
	Var int
	Val float64
}

// Row is a linear constraint.
type Row struct {
	Name  string
	Coefs []Coef
	Sense Sense
	RHS   float64
}

// Model is a 0-1 ILP: all variables are binary. The zero value is unusable;
// create models with NewModel.
type Model struct {
	// Maximize selects the objective direction.
	Maximize bool

	names []string
	obj   []float64
	rows  []Row
}

// NewModel returns an empty model with the given objective direction.
func NewModel(maximize bool) *Model {
	return &Model{Maximize: maximize}
}

// AddVar appends a binary variable with the given name (may be empty) and
// objective coefficient, returning its index.
func (m *Model) AddVar(name string, objCoef float64) int {
	if name == "" {
		name = fmt.Sprintf("x%d", len(m.names))
	}
	m.names = append(m.names, name)
	m.obj = append(m.obj, objCoef)
	return len(m.names) - 1
}

// AddVars appends n unnamed zero-objective variables and returns the index
// of the first.
func (m *Model) AddVars(n int) int {
	first := len(m.names)
	for i := 0; i < n; i++ {
		m.AddVar("", 0)
	}
	return first
}

// SetObj sets the objective coefficient of variable j.
func (m *Model) SetObj(j int, c float64) {
	m.checkVar(j)
	m.obj[j] = c
}

// Obj returns the objective coefficient of variable j.
func (m *Model) Obj(j int) float64 {
	m.checkVar(j)
	return m.obj[j]
}

// VarName returns the name of variable j.
func (m *Model) VarName(j int) string {
	m.checkVar(j)
	return m.names[j]
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumRows returns the number of rows.
func (m *Model) NumRows() int { return len(m.rows) }

// RowAt returns the i-th row (shared storage; treat as read-only).
func (m *Model) RowAt(i int) Row { return m.rows[i] }

func (m *Model) checkVar(j int) {
	if j < 0 || j >= len(m.names) {
		panic(fmt.Sprintf("ilp: variable %d out of range [0,%d)", j, len(m.names)))
	}
}

// AddRow appends a constraint and returns its index. Coefficients are
// merged per variable; zero-merged coefficients are kept (harmless).
func (m *Model) AddRow(name string, coefs []Coef, sense Sense, rhs float64) int {
	for _, c := range coefs {
		m.checkVar(c.Var)
	}
	cp := make([]Coef, len(coefs))
	copy(cp, coefs)
	m.rows = append(m.rows, Row{Name: name, Coefs: cp, Sense: sense, RHS: rhs})
	return len(m.rows) - 1
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	out := NewModel(m.Maximize)
	out.names = append([]string(nil), m.names...)
	out.obj = append([]float64(nil), m.obj...)
	out.rows = make([]Row, len(m.rows))
	for i, r := range m.rows {
		out.rows[i] = Row{Name: r.Name, Coefs: append([]Coef(nil), r.Coefs...), Sense: r.Sense, RHS: r.RHS}
	}
	return out
}

// Solution is a 0/1 value per variable.
type Solution []int8

// Clone returns an independent copy.
func (s Solution) Clone() Solution {
	out := make(Solution, len(s))
	copy(out, s)
	return out
}

// Activity returns Σ a_j x_j for the row under solution s.
func (r Row) Activity(s Solution) float64 {
	a := 0.0
	for _, c := range r.Coefs {
		if s[c.Var] != 0 {
			a += c.Val
		}
	}
	return a
}

// Satisfied reports whether solution s satisfies the row (with tolerance).
func (r Row) Satisfied(s Solution) bool {
	a := r.Activity(s)
	switch r.Sense {
	case LE:
		return a <= r.RHS+1e-9
	case GE:
		return a >= r.RHS-1e-9
	default:
		return math.Abs(a-r.RHS) <= 1e-9
	}
}

// Violation returns how far solution s is from satisfying the row
// (0 when satisfied) — used by the heuristic solver's scoring.
func (r Row) Violation(s Solution) float64 {
	a := r.Activity(s)
	switch r.Sense {
	case LE:
		if a > r.RHS {
			return a - r.RHS
		}
	case GE:
		if a < r.RHS {
			return r.RHS - a
		}
	default:
		return math.Abs(a - r.RHS)
	}
	return 0
}

// Feasible reports whether s satisfies every row of the model.
func (m *Model) Feasible(s Solution) bool {
	if len(s) != len(m.names) {
		return false
	}
	for i := range m.rows {
		if !m.rows[i].Satisfied(s) {
			return false
		}
	}
	return true
}

// NumViolated counts the rows violated by s.
func (m *Model) NumViolated(s Solution) int {
	n := 0
	for i := range m.rows {
		if !m.rows[i].Satisfied(s) {
			n++
		}
	}
	return n
}

// Objective evaluates the objective at s.
func (m *Model) Objective(s Solution) float64 {
	z := 0.0
	for j, v := range s {
		if v != 0 && j < len(m.obj) {
			z += m.obj[j]
		}
	}
	return z
}

// Better reports whether objective value a is strictly better than b under
// the model's direction.
func (m *Model) Better(a, b float64) bool {
	if m.Maximize {
		return a > b+1e-9
	}
	return a < b-1e-9
}

// WorstObjective returns the sentinel objective value that any feasible
// solution improves on.
func (m *Model) WorstObjective() float64 {
	if m.Maximize {
		return math.Inf(-1)
	}
	return math.Inf(1)
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if len(m.obj) != len(m.names) {
		return fmt.Errorf("ilp: obj/name length mismatch")
	}
	for i, r := range m.rows {
		for _, c := range r.Coefs {
			if c.Var < 0 || c.Var >= len(m.names) {
				return fmt.Errorf("ilp: row %d references unknown variable %d", i, c.Var)
			}
			if math.IsNaN(c.Val) || math.IsInf(c.Val, 0) {
				return fmt.Errorf("ilp: row %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(r.RHS) || math.IsInf(r.RHS, 0) {
			return fmt.Errorf("ilp: row %d has non-finite rhs", i)
		}
	}
	return nil
}

// Stats summarizes model dimensions.
type Stats struct {
	Vars, Rows, NonZeros int
}

// ComputeStats returns model dimension statistics.
func (m *Model) ComputeStats() Stats {
	nz := 0
	for _, r := range m.rows {
		nz += len(r.Coefs)
	}
	return Stats{Vars: len(m.names), Rows: len(m.rows), NonZeros: nz}
}

// String renders a compact description ("max 12 vars / 30 rows / 80 nz").
func (m *Model) String() string {
	st := m.ComputeStats()
	dir := "min"
	if m.Maximize {
		dir = "max"
	}
	return fmt.Sprintf("%s %d vars / %d rows / %d nz", dir, st.Vars, st.Rows, st.NonZeros)
}

// RowString renders row i in text-format syntax, e.g. "r0: x0 + 2 x1 <= 3".
func (m *Model) RowString(i int) string {
	r := m.rows[i]
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "%s: ", r.Name)
	}
	coefs := append([]Coef(nil), r.Coefs...)
	sort.Slice(coefs, func(a, c int) bool { return coefs[a].Var < coefs[c].Var })
	for k, c := range coefs {
		v := c.Val
		switch {
		case k == 0 && v == 1:
			b.WriteString(m.names[c.Var])
		case k == 0 && v == -1:
			b.WriteString("- " + m.names[c.Var])
		case k == 0:
			fmt.Fprintf(&b, "%g %s", v, m.names[c.Var])
		case v == 1:
			b.WriteString(" + " + m.names[c.Var])
		case v == -1:
			b.WriteString(" - " + m.names[c.Var])
		case v >= 0:
			fmt.Fprintf(&b, " + %g %s", v, m.names[c.Var])
		default:
			fmt.Fprintf(&b, " - %g %s", -v, m.names[c.Var])
		}
	}
	if len(coefs) == 0 {
		b.WriteString("0")
	}
	fmt.Fprintf(&b, " %s %g", r.Sense, r.RHS)
	return b.String()
}
