package ilp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format is a small LP-file dialect sufficient for 0-1 models:
//
//	# comment
//	max x + 2 y - 3 z
//	st
//	c1: x + y <= 1
//	c2: 2 x - y >= 0
//	c3: x + z = 1
//
// All variables are binary; they are declared implicitly by use. Terms are
// "[coef] name" separated by + or -.

// WriteText renders the model in the text format.
func WriteText(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	dir := "min"
	if m.Maximize {
		dir = "max"
	}
	if _, err := fmt.Fprintf(bw, "%s %s\nst\n", dir, renderTerms(m, objCoefs(m))); err != nil {
		return err
	}
	for i := range m.rows {
		if _, err := fmt.Fprintln(bw, m.RowString(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func objCoefs(m *Model) []Coef {
	var out []Coef
	for j, c := range m.obj {
		if c != 0 {
			out = append(out, Coef{j, c})
		}
	}
	return out
}

func renderTerms(m *Model, coefs []Coef) string {
	if len(coefs) == 0 {
		return "0"
	}
	cp := append([]Coef(nil), coefs...)
	sort.Slice(cp, func(a, b int) bool { return cp[a].Var < cp[b].Var })
	var b strings.Builder
	for k, c := range cp {
		v := c.Val
		name := m.names[c.Var]
		switch {
		case k == 0 && v == 1:
			b.WriteString(name)
		case k == 0 && v == -1:
			b.WriteString("- " + name)
		case k == 0:
			fmt.Fprintf(&b, "%g %s", v, name)
		case v == 1:
			b.WriteString(" + " + name)
		case v == -1:
			b.WriteString(" - " + name)
		case v >= 0:
			fmt.Fprintf(&b, " + %g %s", v, name)
		default:
			fmt.Fprintf(&b, " - %g %s", -v, name)
		}
	}
	return b.String()
}

// ParseText reads a model in the text format.
func ParseText(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var m *Model
	vars := map[string]int{}
	getVar := func(name string) int {
		if j, ok := vars[name]; ok {
			return j
		}
		j := m.AddVar(name, 0)
		vars[name] = j
		return j
	}
	inConstraints := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case m == nil && (strings.HasPrefix(lower, "min") || strings.HasPrefix(lower, "max")):
			m = NewModel(strings.HasPrefix(lower, "max"))
			expr := strings.TrimSpace(line[3:])
			terms, err := parseTerms(expr)
			if err != nil {
				return nil, fmt.Errorf("ilp: line %d: %v", lineNo, err)
			}
			for _, t := range terms {
				j := getVar(t.name)
				m.SetObj(j, m.Obj(j)+t.coef)
			}
		case m == nil:
			return nil, fmt.Errorf("ilp: line %d: expected objective (min/max ...)", lineNo)
		case lower == "st" || lower == "s.t." || lower == "subject to":
			inConstraints = true
		case inConstraints:
			name, rest := "", line
			if ci := strings.Index(line, ":"); ci >= 0 {
				name = strings.TrimSpace(line[:ci])
				rest = strings.TrimSpace(line[ci+1:])
			}
			var sense Sense
			var lhs, rhsStr string
			switch {
			case strings.Contains(rest, "<="):
				parts := strings.SplitN(rest, "<=", 2)
				lhs, rhsStr, sense = parts[0], parts[1], LE
			case strings.Contains(rest, ">="):
				parts := strings.SplitN(rest, ">=", 2)
				lhs, rhsStr, sense = parts[0], parts[1], GE
			case strings.Contains(rest, "="):
				parts := strings.SplitN(rest, "=", 2)
				lhs, rhsStr, sense = parts[0], parts[1], EQ
			default:
				return nil, fmt.Errorf("ilp: line %d: no comparison in %q", lineNo, line)
			}
			rhs, err := strconv.ParseFloat(strings.TrimSpace(rhsStr), 64)
			if err != nil {
				return nil, fmt.Errorf("ilp: line %d: bad rhs %q", lineNo, rhsStr)
			}
			terms, err := parseTerms(strings.TrimSpace(lhs))
			if err != nil {
				return nil, fmt.Errorf("ilp: line %d: %v", lineNo, err)
			}
			merged := map[int]float64{}
			var order []int
			for _, t := range terms {
				j := getVar(t.name)
				if _, seen := merged[j]; !seen {
					order = append(order, j)
				}
				merged[j] += t.coef
			}
			coefs := make([]Coef, 0, len(order))
			for _, j := range order {
				coefs = append(coefs, Coef{j, merged[j]})
			}
			m.AddRow(name, coefs, sense, rhs)
		default:
			return nil, fmt.Errorf("ilp: line %d: unexpected %q before 'st'", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("ilp: empty input")
	}
	return m, nil
}

type term struct {
	coef float64
	name string
}

// parseTerms parses "2 x + y - 3 z" into terms. "0" parses to no terms.
func parseTerms(expr string) ([]term, error) {
	if strings.TrimSpace(expr) == "0" {
		return nil, nil
	}
	toks := strings.Fields(expr)
	var out []term
	sign := 1.0
	coef := 1.0
	haveCoef := false
	for _, tok := range toks {
		switch tok {
		case "+":
			sign, coef, haveCoef = 1, 1, false
			continue
		case "-":
			sign, coef, haveCoef = -1, 1, false
			continue
		}
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			if haveCoef {
				return nil, fmt.Errorf("two consecutive numbers near %q", tok)
			}
			coef = v
			haveCoef = true
			continue
		}
		// Handle glued forms like "2x" or "-x".
		name := tok
		if strings.HasPrefix(name, "-") {
			sign *= -1
			name = name[1:]
		}
		if i := leadingNumber(name); i > 0 {
			v, err := strconv.ParseFloat(name[:i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad coefficient in %q", tok)
			}
			coef = v
			name = name[i:]
		}
		if name == "" {
			return nil, fmt.Errorf("missing variable name near %q", tok)
		}
		out = append(out, term{sign * coef, name})
		sign, coef, haveCoef = 1, 1, false
	}
	if haveCoef {
		return nil, fmt.Errorf("dangling coefficient at end of %q", expr)
	}
	return out, nil
}

func leadingNumber(s string) int {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	return i
}
