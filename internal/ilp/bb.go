package ilp

import (
	"math"
	"time"

	"ilpec/internal/lp"
)

const solveEps = 1e-9

// normRow is a row normalized to Σ a_j x_j ≤ b form.
type normRow struct {
	coefs []Coef
	rhs   float64
}

// solver is the branch-and-bound engine. All rows are normalized to ≤ so
// that pseudo-Boolean propagation has a single shape: a row is infeasible
// when its minimum activity exceeds the right-hand side, and an unfixed
// variable is forced when one of its values would make that happen.
type solver struct {
	m    *Model
	opts Options

	maximize bool
	obj      []float64 // internal minimization objective
	rows     []normRow
	varRows  [][]int32 // rows containing each variable

	fixed  []int8 // -1 unfixed, else 0/1
	minAct []float64
	trail  []int32 // fixed variable indices in order

	incumbent    Solution
	incumbentObj float64 // internal (minimization) value
	hasIncumbent bool

	// Covering structure (detected from the original rows): coverRows[i]
	// lists the columns of a Σ x_j ≥ 1 unit-coefficient row. Used for the
	// counting bound and greedy branching that make set-cover-shaped
	// models (the SAT encoding of §3) tractable.
	coverRows  [][]int32
	coverOfVar [][]int32 // cover rows containing each variable
	branching  Branching

	nodes    int64
	lpSolves int64
	props    int64
	deadline time.Time
	timedOut bool

	lpBase *lp.Problem // base relaxation (built lazily for LPBound)
}

func newSolver(m *Model, opts Options) *solver {
	s := &solver{
		m:        m,
		opts:     opts,
		maximize: m.Maximize,
		obj:      make([]float64, m.NumVars()),
		fixed:    make([]int8, m.NumVars()),
		varRows:  make([][]int32, m.NumVars()),
	}
	for j := range s.fixed {
		s.fixed[j] = -1
	}
	for j := 0; j < m.NumVars(); j++ {
		c := m.obj[j]
		if s.maximize {
			c = -c
		}
		s.obj[j] = c
	}
	// Normalize rows to ≤ form; EQ becomes a ≤ and a ≥(negated ≤) pair.
	addLE := func(coefs []Coef, rhs float64) {
		idx := len(s.rows)
		cp := append([]Coef(nil), coefs...)
		s.rows = append(s.rows, normRow{coefs: cp, rhs: rhs})
		for _, c := range cp {
			s.varRows[c.Var] = append(s.varRows[c.Var], int32(idx))
		}
	}
	neg := func(coefs []Coef) []Coef {
		out := make([]Coef, len(coefs))
		for i, c := range coefs {
			out[i] = Coef{c.Var, -c.Val}
		}
		return out
	}
	for _, r := range m.rows {
		switch r.Sense {
		case LE:
			addLE(r.Coefs, r.RHS)
		case GE:
			addLE(neg(r.Coefs), -r.RHS)
		case EQ:
			addLE(r.Coefs, r.RHS)
			addLE(neg(r.Coefs), -r.RHS)
		}
	}
	s.minAct = make([]float64, len(s.rows))
	for i, r := range s.rows {
		a := 0.0
		for _, c := range r.coefs {
			if c.Val < 0 {
				a += c.Val
			}
		}
		s.minAct[i] = a
	}
	// Detect covering rows (Σ x ≥ 1 or Σ x = 1, unit coefficients) in the
	// original model for the counting bound and greedy branching. An
	// equality row's ≥ direction is a valid cover.
	s.coverOfVar = make([][]int32, m.NumVars())
	for _, r := range m.rows {
		if (r.Sense != GE && r.Sense != EQ) || r.RHS != 1 {
			continue
		}
		ok := true
		for _, c := range r.Coefs {
			if c.Val != 1 {
				ok = false
				break
			}
		}
		if !ok || len(r.Coefs) == 0 {
			continue
		}
		idx := int32(len(s.coverRows))
		cols := make([]int32, len(r.Coefs))
		for i, c := range r.Coefs {
			cols[i] = int32(c.Var)
			s.coverOfVar[c.Var] = append(s.coverOfVar[c.Var], idx)
		}
		s.coverRows = append(s.coverRows, cols)
	}
	s.branching = opts.Branching
	if s.branching == BranchMaxObj && len(s.coverRows) > 0 {
		// The default rule degenerates on uniform objectives; covering
		// structure admits a much better greedy choice.
		s.branching = BranchCoverGreedy
	}
	return s
}

func (s *solver) internalObj(sol Solution) float64 {
	z := 0.0
	for j, v := range sol {
		if v != 0 {
			z += s.obj[j]
		}
	}
	return z
}

func (s *solver) run() Result {
	if s.opts.TimeLimit > 0 {
		s.deadline = time.Now().Add(s.opts.TimeLimit)
	}
	// Warm start: adopt as incumbent when feasible.
	if ws := s.opts.WarmStart; ws != nil && len(ws) == s.m.NumVars() && s.m.Feasible(ws) {
		s.incumbent = ws.Clone()
		s.incumbentObj = s.internalObj(ws)
		s.hasIncumbent = true
	}

	// Root propagation, then depth-first search with explicit undo.
	mark := len(s.trail)
	if s.propagateAll() {
		s.search()
	}
	s.undoTo(mark)

	res := Result{Nodes: s.nodes, LPSolves: s.lpSolves, Propagations: s.props}
	switch {
	case s.hasIncumbent && !s.timedOut && !s.nodeLimited():
		res.Status = Optimal
	case s.hasIncumbent:
		res.Status = Feasible
	case !s.timedOut && !s.nodeLimited():
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	if s.hasIncumbent {
		res.Solution = s.incumbent.Clone()
		res.Objective = s.m.Objective(s.incumbent)
	}
	return res
}

func (s *solver) nodeLimited() bool {
	return s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes
}

func (s *solver) limitHit() bool {
	if s.nodeLimited() {
		return true
	}
	if !s.deadline.IsZero() && s.nodes%256 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
	}
	return s.timedOut
}

// search explores the subtree under the current trail. It returns false if
// a limit stopped the search (so optimality cannot be claimed).
func (s *solver) search() bool {
	if s.limitHit() {
		return false
	}
	// Bounding.
	bound := s.bound()
	if math.IsInf(bound, 1) {
		return true // no feasible completion exists
	}
	if s.hasIncumbent && bound >= s.incumbentObj-solveEps {
		return true // pruned; subtree fully accounted for
	}
	j := s.pickVar()
	if j < 0 {
		// All variables fixed: feasible by propagation invariant.
		s.record()
		return true
	}
	s.nodes++
	first := s.firstValue(j)
	complete := true
	for _, v := range [2]int8{first, 1 - first} {
		mark := len(s.trail)
		if s.assign(j, v) && s.propagateAll() {
			if !s.search() {
				complete = false
			}
		}
		s.undoTo(mark)
		if s.limitHit() {
			return false
		}
	}
	return complete
}

// firstValue returns the branch value to try first for variable j: the warm
// start's value when present, otherwise greedy-1 for covering picks, else
// the objective-improving value.
func (s *solver) firstValue(j int) int8 {
	if ws := s.opts.WarmStart; ws != nil && j < len(ws) {
		return ws[j]
	}
	if s.branching == BranchCoverGreedy && len(s.coverOfVar[j]) > 0 {
		return 1 // dive greedily toward a covering incumbent
	}
	if s.obj[j] > 0 {
		return 0
	}
	return 1
}

// record stores the current complete assignment as incumbent if better.
func (s *solver) record() {
	sol := make(Solution, len(s.fixed))
	for j, v := range s.fixed {
		if v == 1 {
			sol[j] = 1
		}
	}
	z := s.internalObj(sol)
	if !s.hasIncumbent || z < s.incumbentObj-solveEps {
		s.incumbent = sol
		s.incumbentObj = z
		s.hasIncumbent = true
	}
}

// assign fixes variable j to v, updating row activities. Returns false when
// a row becomes infeasible immediately.
func (s *solver) assign(j int, v int8) bool {
	s.fixed[j] = v
	s.trail = append(s.trail, int32(j))
	ok := true
	for _, ri := range s.varRows[j] {
		r := &s.rows[ri]
		var a float64
		for _, c := range r.coefs {
			if c.Var == j {
				a = c.Val
				break
			}
		}
		// Min contribution was min(0, a); now a·v.
		s.minAct[ri] += a*float64(v) - math.Min(0, a)
		if s.minAct[ri] > r.rhs+solveEps {
			ok = false
		}
	}
	return ok
}

func (s *solver) unassign(j int) {
	v := s.fixed[j]
	for _, ri := range s.varRows[j] {
		r := &s.rows[ri]
		var a float64
		for _, c := range r.coefs {
			if c.Var == j {
				a = c.Val
				break
			}
		}
		s.minAct[ri] -= a*float64(v) - math.Min(0, a)
	}
	s.fixed[j] = -1
}

func (s *solver) undoTo(mark int) {
	for len(s.trail) > mark {
		j := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.unassign(int(j))
	}
}

// propagateAll runs pseudo-Boolean propagation to fixpoint. Returns false
// on conflict.
func (s *solver) propagateAll() bool {
	for {
		changed := false
		for ri := range s.rows {
			r := &s.rows[ri]
			slack := r.rhs - s.minAct[ri]
			if slack < -solveEps {
				return false
			}
			for _, c := range r.coefs {
				if s.fixed[c.Var] != -1 {
					continue
				}
				if c.Val > 0 && c.Val > slack+solveEps {
					// x=1 would overflow the row → force 0.
					s.props++
					if !s.assign(c.Var, 0) {
						return false
					}
					changed = true
				} else if c.Val < 0 && -c.Val > slack+solveEps {
					// x=0 removes the negative min contribution → force 1.
					s.props++
					if !s.assign(c.Var, 1) {
						return false
					}
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// bound returns a lower bound (internal minimization sense) on the best
// completion of the current partial assignment.
func (s *solver) bound() float64 {
	switch s.opts.Bounding {
	case LPBound:
		if b, ok := s.lpBound(); ok {
			return b
		}
		return s.combBound()
	default:
		return s.combBound()
	}
}

func (s *solver) combBound() float64 {
	z := 0.0
	for j, v := range s.fixed {
		switch {
		case v == 1:
			z += s.obj[j]
		case v == -1 && s.obj[j] < 0:
			z += s.obj[j] // best case: take every negative-cost variable
		}
	}
	return z + s.coverBound()
}

// coverBound strengthens the combinatorial bound with a counting argument
// over the detected covering rows: every still-uncovered row whose unfixed
// columns all carry non-negative cost requires a paid selection; a single
// selection covers at most maxCov such rows and costs at least minC, so at
// least ceil(N/maxCov)·minC of extra cost is unavoidable. (Negative-cost
// columns are already charged by combBound, so rows they could cover are
// excluded.)
func (s *solver) coverBound() float64 {
	if len(s.coverRows) == 0 {
		return 0
	}
	// Mark the rows that still need a paid covering selection.
	needed := 0
	neededMark := make([]bool, len(s.coverRows))
	for ri, cols := range s.coverRows {
		covered := false
		freeCoverable := false
		for _, j := range cols {
			switch s.fixed[j] {
			case 1:
				covered = true
			case -1:
				if s.obj[j] < 0 {
					freeCoverable = true
				}
			}
			if covered {
				break
			}
		}
		if !covered && !freeCoverable {
			neededMark[ri] = true
			needed++
		}
	}
	if needed == 0 {
		return 0
	}
	maxCov := 0
	minC := math.Inf(1)
	for j := range s.fixed {
		if s.fixed[j] != -1 || s.obj[j] < 0 {
			continue
		}
		cov := 0
		for _, ri := range s.coverOfVar[j] {
			if neededMark[ri] {
				cov++
			}
		}
		if cov == 0 {
			continue
		}
		if cov > maxCov {
			maxCov = cov
		}
		if s.obj[j] < minC {
			minC = s.obj[j]
		}
	}
	if maxCov == 0 {
		// No unfixed column can cover a needed row: the node is infeasible;
		// report an infinite bound so it prunes immediately.
		return math.Inf(1)
	}
	picks := (needed + maxCov - 1) / maxCov
	return float64(picks) * minC
}

// lpBound solves the LP relaxation with current fixings as tight bounds.
func (s *solver) lpBound() (float64, bool) {
	s.lpSolves++
	p := lp.NewProblem(false)
	for j := range s.fixed {
		lo, hi := 0.0, 1.0
		if s.fixed[j] == 0 {
			hi = 0
		} else if s.fixed[j] == 1 {
			lo = 1
		}
		p.AddVariable(s.obj[j], lo, hi)
	}
	for _, r := range s.rows {
		coefs := make([]lp.Coef, len(r.coefs))
		for i, c := range r.coefs {
			coefs[i] = lp.Coef{Var: c.Var, Val: c.Val}
		}
		p.AddRow(coefs, lp.LE, r.rhs)
	}
	res := p.Solve()
	switch res.Status {
	case lp.Optimal:
		return res.Objective, true
	case lp.Infeasible:
		return math.Inf(1), true // prune: no completion exists
	default:
		return 0, false
	}
}

// pickVar selects the next branching variable, or -1 when all are fixed.
func (s *solver) pickVar() int {
	switch s.branching {
	case BranchCoverGreedy:
		// Greedy set-cover choice: the unfixed variable covering the most
		// still-uncovered covering rows; falls through to max-objective
		// when every row is covered.
		covered := make([]bool, len(s.coverRows))
		for ri, cols := range s.coverRows {
			for _, j := range cols {
				if s.fixed[j] == 1 {
					covered[ri] = true
					break
				}
			}
		}
		best, bestCov := -1, 0
		for j, v := range s.fixed {
			if v != -1 {
				continue
			}
			cov := 0
			for _, ri := range s.coverOfVar[j] {
				if !covered[ri] {
					cov++
				}
			}
			if cov > bestCov {
				best, bestCov = j, cov
			}
		}
		if best >= 0 {
			return best
		}
		return s.pickMaxObj()
	case BranchMostConstrained:
		best, bestOcc := -1, -1
		for j, v := range s.fixed {
			if v == -1 && len(s.varRows[j]) > bestOcc {
				best, bestOcc = j, len(s.varRows[j])
			}
		}
		return best
	case BranchLPFractional:
		if s.opts.Bounding == LPBound {
			if j := s.lpFractionalVar(); j >= 0 {
				return j
			}
		}
		return s.pickMaxObj()
	default:
		return s.pickMaxObj()
	}
}

func (s *solver) pickMaxObj() int {
	best, bestAbs := -1, -1.0
	for j, v := range s.fixed {
		if v == -1 && math.Abs(s.obj[j]) > bestAbs {
			best, bestAbs = j, math.Abs(s.obj[j])
		}
	}
	return best
}

// lpFractionalVar re-solves the node relaxation and returns the unfixed
// variable with the most fractional value, or -1.
func (s *solver) lpFractionalVar() int {
	s.lpSolves++
	p := lp.NewProblem(false)
	for j := range s.fixed {
		lo, hi := 0.0, 1.0
		if s.fixed[j] == 0 {
			hi = 0
		} else if s.fixed[j] == 1 {
			lo = 1
		}
		p.AddVariable(s.obj[j], lo, hi)
	}
	for _, r := range s.rows {
		coefs := make([]lp.Coef, len(r.coefs))
		for i, c := range r.coefs {
			coefs[i] = lp.Coef{Var: c.Var, Val: c.Val}
		}
		p.AddRow(coefs, lp.LE, r.rhs)
	}
	res := p.Solve()
	if res.Status != lp.Optimal {
		return -1
	}
	best, bestDist := -1, 2.0
	for j, x := range res.X {
		if s.fixed[j] != -1 {
			continue
		}
		d := math.Abs(x - 0.5)
		if d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}
