package ilp

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"ilpec/internal/lp"
)

const solveEps = 1e-9

// normRow is a row normalized to Σ a_j x_j ≤ b form.
type normRow struct {
	coefs  []Coef
	rhs    float64
	maxAbs float64 // largest |coef| — the watched-slack early-exit threshold
}

// occ is one occurrence of a variable in a normalized row. The column index
// varOccs[j] carries the coefficient alongside the row id so assign and
// unassign touch each affected row in O(1) instead of rescanning its
// coefficient list.
type occ struct {
	row int32
	val float64
}

// solver is the branch-and-bound engine. All rows are normalized to ≤ so
// that pseudo-Boolean propagation has a single shape: a row is infeasible
// when its minimum activity exceeds the right-hand side, and an unfixed
// variable is forced when one of its values would make that happen.
//
// The kernel is incremental and allocation-free on the hot path: a column
// index drives assign/unassign, a worklist revisits only rows whose slack
// shrank, covering-row counts are maintained on the trail, the objective
// bound terms are updated in O(1) per assignment, and the LP relaxation is
// built once and re-solved per node by mutating variable bounds with a
// warm-started simplex.
type solver struct {
	m    *Model
	opts Options

	maximize bool
	obj      []float64 // internal minimization objective
	rows     []normRow
	varOccs  [][]occ // column index: each variable's (row, coef) pairs

	fixed  []int8 // -1 unfixed, else 0/1
	minAct []float64
	trail  []int32 // fixed variable indices in order

	curObj  float64 // Σ obj[j] over variables fixed to 1
	negFree float64 // Σ obj[j] over unfixed variables with obj[j] < 0

	queue   []int32 // worklist: rows whose slack shrank since last scan
	inQueue []bool

	incumbent    Solution // reusable buffer; cloned on return
	incumbentObj float64  // internal (minimization) value
	hasIncumbent bool
	shared       *sharedInc // non-nil when part of a parallel root search

	// Covering structure (detected from the original rows): coverRows[i]
	// lists the columns of a Σ x_j ≥ 1 unit-coefficient row. Used for the
	// counting bound and greedy branching that make set-cover-shaped
	// models (the SAT encoding of §3) tractable. coverCnt and coverNeg are
	// maintained incrementally on the trail.
	coverRows  [][]int32
	coverOfVar [][]int32 // cover rows containing each variable
	coverCnt   []int32   // variables fixed to 1 per cover row
	coverNeg   []int32   // unfixed negative-cost columns per cover row
	branching  Branching

	neededMark []int64 // epoch-stamped scratch for coverBound
	markEpoch  int64

	nodes      int64
	lpSolves   int64
	props      int64
	scansSaved int64
	cutTight   int64 // propagation fixings forced by cut rows
	deadline   time.Time
	timedOut   bool

	// budget, when non-nil, is the node counter shared by every searcher
	// of one Solve call; Options.MaxNodes is checked against it so the
	// budget stays global regardless of Workers. Nil (serial solves)
	// checks the local node count instead.
	budget *atomic.Int64
	// localCap additionally bounds this solver's own nodes (the parallel
	// root search's bounded serial dive); 0 means no local cap.
	localCap int64
	ctx      context.Context // non-nil: abort when cancelled
	aborted  bool

	// cutNormStart is the first normalized-row index belonging to a cut
	// row (cut rows are the model's trailing opts.cutRows rows);
	// math.MaxInt when the model carries no cuts.
	cutNormStart int

	lpBase     *lp.Problem // base relaxation, built once per solve
	lpSolver   *lp.Solver  // warm-started simplex over lpBase
	lpRes      lp.Result   // node relaxation shared by bound and branching
	lpResTrail int         // trail length at which lpRes was computed
	lpResOK    bool
}

func newSolver(m *Model, opts Options) *solver {
	s := &solver{
		m:            m,
		opts:         opts,
		maximize:     m.Maximize,
		obj:          make([]float64, m.NumVars()),
		fixed:        make([]int8, m.NumVars()),
		varOccs:      make([][]occ, m.NumVars()),
		ctx:          opts.Context,
		cutNormStart: math.MaxInt,
	}
	if opts.cutRows > 0 {
		// Cut rows are the trailing opts.cutRows model rows; count the
		// normalized rows the non-cut prefix expands to (EQ becomes two).
		start := 0
		for _, r := range m.rows[:len(m.rows)-opts.cutRows] {
			if r.Sense == EQ {
				start += 2
			} else {
				start++
			}
		}
		s.cutNormStart = start
	}
	for j := range s.fixed {
		s.fixed[j] = -1
	}
	for j := 0; j < m.NumVars(); j++ {
		c := m.obj[j]
		if s.maximize {
			c = -c
		}
		s.obj[j] = c
		if c < 0 {
			s.negFree += c
		}
	}
	// Normalize rows to ≤ form; EQ becomes a ≤ and a ≥(negated ≤) pair.
	// Row coefficients and the column index live in flat backing arrays
	// sized up front, so model ingestion costs a fixed handful of
	// allocations instead of per-row/per-variable append growth.
	nRows, nz := 0, 0
	for _, r := range m.rows {
		if r.Sense == EQ {
			nRows += 2
			nz += 2 * len(r.Coefs)
		} else {
			nRows++
			nz += len(r.Coefs)
		}
	}
	s.rows = make([]normRow, 0, nRows)
	flat := make([]Coef, 0, nz)
	addLE := func(coefs []Coef, negate bool, rhs float64) {
		start := len(flat)
		maxAbs := 0.0
		for _, c := range coefs {
			v := c.Val
			if negate {
				v = -v
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
			flat = append(flat, Coef{c.Var, v})
		}
		s.rows = append(s.rows, normRow{coefs: flat[start:len(flat):len(flat)], rhs: rhs, maxAbs: maxAbs})
	}
	for _, r := range m.rows {
		switch r.Sense {
		case LE:
			addLE(r.Coefs, false, r.RHS)
		case GE:
			addLE(r.Coefs, true, -r.RHS)
		case EQ:
			addLE(r.Coefs, false, r.RHS)
			addLE(r.Coefs, true, -r.RHS)
		}
	}
	s.minAct = make([]float64, len(s.rows))
	for i, r := range s.rows {
		a := 0.0
		for _, c := range r.coefs {
			if c.Val < 0 {
				a += c.Val
			}
		}
		s.minAct[i] = a
	}
	// Column index: count occurrences, carve per-variable slices out of one
	// flat array, then fill.
	counts := make([]int32, m.NumVars())
	for _, r := range s.rows {
		for _, c := range r.coefs {
			counts[c.Var]++
		}
	}
	occFlat := make([]occ, nz)
	pos := 0
	for j := range s.varOccs {
		n := int(counts[j])
		s.varOccs[j] = occFlat[pos : pos : pos+n]
		pos += n
	}
	for ri, r := range s.rows {
		for _, c := range r.coefs {
			s.varOccs[c.Var] = append(s.varOccs[c.Var], occ{int32(ri), c.Val})
		}
	}
	s.inQueue = make([]bool, len(s.rows))
	s.queue = make([]int32, 0, len(s.rows))
	s.trail = make([]int32, 0, m.NumVars())
	// Detect covering rows (Σ x ≥ 1 or Σ x = 1, unit coefficients) in the
	// original model for the counting bound and greedy branching. An
	// equality row's ≥ direction is a valid cover.
	s.coverOfVar = make([][]int32, m.NumVars())
	for _, r := range m.rows {
		if (r.Sense != GE && r.Sense != EQ) || r.RHS != 1 {
			continue
		}
		ok := true
		for _, c := range r.Coefs {
			if c.Val != 1 {
				ok = false
				break
			}
		}
		if !ok || len(r.Coefs) == 0 {
			continue
		}
		idx := int32(len(s.coverRows))
		cols := make([]int32, len(r.Coefs))
		neg := int32(0)
		for i, c := range r.Coefs {
			cols[i] = int32(c.Var)
			s.coverOfVar[c.Var] = append(s.coverOfVar[c.Var], idx)
			if s.obj[c.Var] < 0 {
				neg++
			}
		}
		s.coverRows = append(s.coverRows, cols)
		s.coverNeg = append(s.coverNeg, neg)
	}
	s.coverCnt = make([]int32, len(s.coverRows))
	s.neededMark = make([]int64, len(s.coverRows))
	s.branching = opts.Branching
	if s.branching == BranchMaxObj && len(s.coverRows) > 0 {
		// The default rule degenerates on uniform objectives; covering
		// structure admits a much better greedy choice.
		s.branching = BranchCoverGreedy
	}
	return s
}

func (s *solver) internalObj(sol Solution) float64 {
	z := 0.0
	for j, v := range sol {
		if v != 0 {
			z += s.obj[j]
		}
	}
	return z
}

func (s *solver) run() Result {
	if s.opts.TimeLimit > 0 && s.deadline.IsZero() {
		s.deadline = time.Now().Add(s.opts.TimeLimit)
	}
	// Warm start: adopt as incumbent when feasible.
	if ws := s.opts.WarmStart; ws != nil && len(ws) == s.m.NumVars() && s.m.Feasible(ws) {
		s.incumbent = ws.Clone()
		s.incumbentObj = s.internalObj(ws)
		s.hasIncumbent = true
	}

	// Root propagation, then depth-first search with explicit undo.
	mark := len(s.trail)
	if s.rootPropagate() {
		s.search()
	}
	s.undoTo(mark)

	res := s.result()
	switch {
	case s.hasIncumbent && !s.truncated():
		res.Status = Optimal
	case s.hasIncumbent:
		res.Status = Feasible
	case !s.truncated():
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	if s.hasIncumbent {
		res.Solution = s.incumbent.Clone()
		res.Objective = s.m.Objective(s.incumbent)
	}
	return res
}

// result collects the node counters (status and solution are filled by the
// caller).
func (s *solver) result() Result {
	res := Result{
		Nodes:          s.nodes,
		LPSolves:       s.lpSolves,
		Propagations:   s.props,
		RowScansSaved:  s.scansSaved,
		CutTightenings: s.cutTight,
		Workers:        1,
	}
	if s.lpSolver != nil {
		res.LPWarmHits = s.lpSolver.WarmHits
	}
	return res
}

// rootPropagate seeds the worklist with every row (the only moment a full
// pass is needed) and runs propagation to fixpoint.
func (s *solver) rootPropagate() bool {
	for ri := range s.rows {
		s.enqueue(int32(ri))
	}
	if !s.propagate() {
		s.clearQueue()
		return false
	}
	return true
}

// nodeLimited reports budget exhaustion: the global MaxNodes budget
// (drawn from the shared counter when this searcher is part of a parallel
// solve) or this searcher's own localCap (the parallel root search's
// bounded serial dive).
func (s *solver) nodeLimited() bool {
	if s.localCap > 0 && s.nodes >= s.localCap {
		return true
	}
	if s.opts.MaxNodes <= 0 {
		return false
	}
	if s.budget != nil {
		return s.budget.Load() >= s.opts.MaxNodes
	}
	return s.nodes >= s.opts.MaxNodes
}

// truncated reports whether any limit (nodes, time, context) stopped this
// searcher from proving its subtree.
func (s *solver) truncated() bool {
	return s.timedOut || s.aborted || s.nodeLimited()
}

func (s *solver) limitHit() bool {
	if s.nodeLimited() {
		return true
	}
	if s.nodes%256 == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.timedOut = true
		}
		if s.ctx != nil && s.ctx.Err() != nil {
			s.aborted = true
		}
	}
	return s.timedOut || s.aborted
}

// search explores the subtree under the current trail. It returns false if
// a limit stopped the search (so optimality cannot be claimed).
func (s *solver) search() bool {
	if s.limitHit() {
		return false
	}
	if s.nodes%4096 == 0 {
		s.resyncBoundTerms()
	}
	if s.shared != nil {
		s.syncIncumbent()
	}
	// Bounding.
	bound := s.bound()
	if math.IsInf(bound, 1) {
		return true // no feasible completion exists
	}
	if s.hasIncumbent && bound >= s.incumbentObj-solveEps {
		return true // pruned; subtree fully accounted for
	}
	j := s.pickVar()
	if j < 0 {
		// All variables fixed: feasible by propagation invariant.
		s.record()
		return true
	}
	s.nodes++
	if s.budget != nil {
		s.budget.Add(1)
	}
	first := s.firstValue(j)
	complete := true
	for _, v := range [2]int8{first, 1 - first} {
		mark := len(s.trail)
		if s.assign(j, v) && s.propagate() {
			if !s.search() {
				complete = false
			}
		}
		s.clearQueue()
		s.undoTo(mark)
		if s.limitHit() {
			return false
		}
	}
	return complete
}

// syncIncumbent adopts the parallel search's shared bound when it is
// tighter than the local one.
func (s *solver) syncIncumbent() {
	if b, ok := s.shared.best(); ok && (!s.hasIncumbent || b < s.incumbentObj) {
		s.incumbentObj = b
		s.hasIncumbent = true
	}
}

// firstValue returns the branch value to try first for variable j: the warm
// start's value when present, otherwise greedy-1 for covering picks, else
// the objective-improving value.
func (s *solver) firstValue(j int) int8 {
	if ws := s.opts.WarmStart; ws != nil && j < len(ws) {
		return ws[j]
	}
	if s.branching == BranchCoverGreedy && len(s.coverOfVar[j]) > 0 {
		return 1 // dive greedily toward a covering incumbent
	}
	if s.obj[j] > 0 {
		return 0
	}
	return 1
}

// record stores the current complete assignment as incumbent if better.
// The objective is recomputed exactly here (leaves are rare relative to
// nodes) so incremental float drift in curObj can never corrupt the answer.
func (s *solver) record() {
	z := 0.0
	for j, v := range s.fixed {
		if v == 1 {
			z += s.obj[j]
		}
	}
	if s.hasIncumbent && z >= s.incumbentObj-solveEps {
		return
	}
	if s.shared != nil {
		if s.shared.tryUpdate(z, s.fixed) {
			s.incumbentObj = z
			s.hasIncumbent = true
		} else {
			s.syncIncumbent()
		}
		return
	}
	if s.incumbent == nil {
		s.incumbent = make(Solution, len(s.fixed))
	}
	for j, v := range s.fixed {
		if v == 1 {
			s.incumbent[j] = 1
		} else {
			s.incumbent[j] = 0
		}
	}
	s.incumbentObj = z
	s.hasIncumbent = true
}

func (s *solver) enqueue(ri int32) {
	if !s.inQueue[ri] {
		s.inQueue[ri] = true
		s.queue = append(s.queue, ri)
	}
}

// clearQueue drops pending worklist entries (after a conflict, before the
// trail rewinds). Idempotent.
func (s *solver) clearQueue() {
	for _, ri := range s.queue {
		s.inQueue[ri] = false
	}
	s.queue = s.queue[:0]
}

// assign fixes variable j to v, updating row activities, cover counts, and
// the incremental bound terms through the column index, and enqueues every
// row whose slack shrank. Returns false when a row becomes infeasible
// immediately (the caller must clearQueue before undoing).
func (s *solver) assign(j int, v int8) bool {
	s.fixed[j] = v
	s.trail = append(s.trail, int32(j))
	c := s.obj[j]
	if v == 1 {
		s.curObj += c
	}
	if c < 0 {
		s.negFree -= c
		for _, ri := range s.coverOfVar[j] {
			s.coverNeg[ri]--
			if v == 1 {
				s.coverCnt[ri]++
			}
		}
	} else if v == 1 {
		for _, ri := range s.coverOfVar[j] {
			s.coverCnt[ri]++
		}
	}
	ok := true
	for _, o := range s.varOccs[j] {
		// Min contribution was min(0, val); now val·v. The delta is ≥ 0, so
		// an assignment can only shrink slack.
		var delta float64
		if v == 1 {
			if o.val > 0 {
				delta = o.val
			}
		} else {
			if o.val < 0 {
				delta = -o.val
			}
		}
		if delta != 0 {
			s.minAct[o.row] += delta
			if s.minAct[o.row] > s.rows[o.row].rhs+solveEps {
				ok = false
			}
			s.enqueue(o.row)
		}
	}
	return ok
}

func (s *solver) unassign(j int) {
	v := s.fixed[j]
	c := s.obj[j]
	if v == 1 {
		s.curObj -= c
	}
	if c < 0 {
		s.negFree += c
		for _, ri := range s.coverOfVar[j] {
			s.coverNeg[ri]++
			if v == 1 {
				s.coverCnt[ri]--
			}
		}
	} else if v == 1 {
		for _, ri := range s.coverOfVar[j] {
			s.coverCnt[ri]--
		}
	}
	for _, o := range s.varOccs[j] {
		if v == 1 {
			if o.val > 0 {
				s.minAct[o.row] -= o.val
			}
		} else {
			if o.val < 0 {
				s.minAct[o.row] += o.val
			}
		}
	}
	s.fixed[j] = -1
}

func (s *solver) undoTo(mark int) {
	if len(s.trail) > mark {
		// Different assignments can later reproduce the same trail length,
		// so the cached node relaxation must die with the backtrack.
		s.lpResOK = false
	}
	for len(s.trail) > mark {
		j := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.unassign(int(j))
	}
}

// propagate drains the worklist: only rows whose slack shrank since their
// last scan are revisited, and a row whose slack still exceeds its largest
// coefficient magnitude cannot force anything and is skipped outright.
// Returns false on conflict (the queue is cleared in that case).
func (s *solver) propagate() bool {
	for len(s.queue) > 0 {
		ri := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inQueue[ri] = false
		r := &s.rows[ri]
		slack := r.rhs - s.minAct[ri]
		if slack < -solveEps {
			s.clearQueue()
			return false
		}
		if r.maxAbs <= slack+solveEps {
			// Watched-slack early exit: no coefficient can overflow.
			s.scansSaved++
			continue
		}
		for _, c := range r.coefs {
			if s.fixed[c.Var] != -1 {
				continue
			}
			if c.Val > slack+solveEps {
				// x=1 would overflow the row → force 0.
				s.props++
				if int(ri) >= s.cutNormStart {
					s.cutTight++
				}
				if !s.assign(c.Var, 0) {
					s.clearQueue()
					return false
				}
			} else if c.Val < 0 && -c.Val > slack+solveEps {
				// x=0 removes the negative min contribution → force 1.
				s.props++
				if int(ri) >= s.cutNormStart {
					s.cutTight++
				}
				if !s.assign(c.Var, 1) {
					s.clearQueue()
					return false
				}
			}
			// Forcing a variable at its min-contribution value leaves this
			// row's slack unchanged, so the scan stays valid.
		}
	}
	return true
}

// bound returns a lower bound (internal minimization sense) on the best
// completion of the current partial assignment.
func (s *solver) bound() float64 {
	switch s.opts.Bounding {
	case LPBound:
		if b, ok := s.lpBound(); ok {
			return b
		}
		return s.combBound()
	default:
		return s.combBound()
	}
}

// combBound is the O(cover) combinatorial bound: the objective of the
// variables fixed to 1 plus every negative-cost unfixed variable — both
// maintained incrementally on the trail — plus the covering counting bound.
func (s *solver) combBound() float64 {
	return s.curObj + s.negFree + s.coverBound()
}

// resyncBoundTerms recomputes curObj and negFree exactly. The incremental
// +=/-= pairs in assign/unassign leave floating-point residue on non-dyadic
// objectives; a periodic exact rebuild keeps the accumulated drift far
// below solveEps so the bound can never prune the true optimum.
func (s *solver) resyncBoundTerms() {
	cur, neg := 0.0, 0.0
	for j, v := range s.fixed {
		switch v {
		case 1:
			cur += s.obj[j]
		case -1:
			if s.obj[j] < 0 {
				neg += s.obj[j]
			}
		}
	}
	s.curObj, s.negFree = cur, neg
}

// coverBound strengthens the combinatorial bound with a counting argument
// over the detected covering rows: every still-uncovered row whose unfixed
// columns all carry non-negative cost requires a paid selection; a single
// selection covers at most maxCov such rows and costs at least minC, so at
// least ceil(N/maxCov)·minC of extra cost is unavoidable. (Negative-cost
// columns are already charged by combBound, so rows they could cover are
// excluded.) Coverage state comes from the trail-maintained counters; the
// needed-row marks live in an epoch-stamped scratch buffer, so the bound
// allocates nothing.
func (s *solver) coverBound() float64 {
	if len(s.coverRows) == 0 {
		return 0
	}
	needed := 0
	s.markEpoch++
	for ri := range s.coverRows {
		if s.coverCnt[ri] == 0 && s.coverNeg[ri] == 0 {
			s.neededMark[ri] = s.markEpoch
			needed++
		}
	}
	if needed == 0 {
		return 0
	}
	maxCov := 0
	minC := math.Inf(1)
	for j := range s.fixed {
		if s.fixed[j] != -1 || s.obj[j] < 0 {
			continue
		}
		cov := 0
		for _, ri := range s.coverOfVar[j] {
			if s.neededMark[ri] == s.markEpoch {
				cov++
			}
		}
		if cov == 0 {
			continue
		}
		if cov > maxCov {
			maxCov = cov
		}
		if s.obj[j] < minC {
			minC = s.obj[j]
		}
	}
	if maxCov == 0 {
		// No unfixed column can cover a needed row: the node is infeasible;
		// report an infinite bound so it prunes immediately.
		return math.Inf(1)
	}
	picks := (needed + maxCov - 1) / maxCov
	return float64(picks) * minC
}

// ensureLP builds the base LP relaxation once per solve. Nodes differ only
// in variable bounds, which SetBounds mutates in place.
func (s *solver) ensureLP() {
	if s.lpBase != nil {
		return
	}
	p := lp.NewProblem(false)
	for j := range s.fixed {
		p.AddVariable(s.obj[j], 0, 1)
	}
	buf := make([]lp.Coef, 0, 16)
	for _, r := range s.rows {
		buf = buf[:0]
		for _, c := range r.coefs {
			buf = append(buf, lp.Coef{Var: c.Var, Val: c.Val})
		}
		p.AddRow(buf, lp.LE, r.rhs)
	}
	s.lpBase = p
	s.lpSolver = lp.NewSolver(p)
}

// nodeLP solves the relaxation of the current node, warm-starting the
// simplex from the previous node's basis. The result is cached so the
// bound and the fractional branching rule share one solve per node.
func (s *solver) nodeLP() *lp.Result {
	if s.lpResOK && s.lpResTrail == len(s.trail) {
		return &s.lpRes
	}
	s.ensureLP()
	for j, v := range s.fixed {
		lo, hi := 0.0, 1.0
		switch v {
		case 0:
			hi = 0
		case 1:
			lo = 1
		}
		s.lpBase.SetBounds(j, lo, hi)
	}
	s.lpSolves++
	s.lpRes = s.lpSolver.Solve()
	s.lpResTrail = len(s.trail)
	s.lpResOK = true
	return &s.lpRes
}

// lpBound prices the node by its LP relaxation.
func (s *solver) lpBound() (float64, bool) {
	res := s.nodeLP()
	switch res.Status {
	case lp.Optimal:
		return res.Objective, true
	case lp.Infeasible:
		return math.Inf(1), true // prune: no completion exists
	default:
		return 0, false
	}
}

// pickVar selects the next branching variable, or -1 when all are fixed.
func (s *solver) pickVar() int {
	switch s.branching {
	case BranchCoverGreedy:
		// Greedy set-cover choice: the unfixed variable covering the most
		// still-uncovered covering rows (read off the trail-maintained
		// counts); falls through to max-objective when every row is covered.
		best, bestCov := -1, 0
		for j, v := range s.fixed {
			if v != -1 {
				continue
			}
			cov := 0
			for _, ri := range s.coverOfVar[j] {
				if s.coverCnt[ri] == 0 {
					cov++
				}
			}
			if cov > bestCov {
				best, bestCov = j, cov
			}
		}
		if best >= 0 {
			return best
		}
		return s.pickMaxObj()
	case BranchMostConstrained:
		best, bestOcc := -1, -1
		for j, v := range s.fixed {
			if v == -1 && len(s.varOccs[j]) > bestOcc {
				best, bestOcc = j, len(s.varOccs[j])
			}
		}
		return best
	case BranchLPFractional:
		if s.opts.Bounding == LPBound {
			if j := s.lpFractionalVar(); j >= 0 {
				return j
			}
		}
		return s.pickMaxObj()
	default:
		return s.pickMaxObj()
	}
}

func (s *solver) pickMaxObj() int {
	best, bestAbs := -1, -1.0
	for j, v := range s.fixed {
		if v == -1 && math.Abs(s.obj[j]) > bestAbs {
			best, bestAbs = j, math.Abs(s.obj[j])
		}
	}
	return best
}

// lpFractionalVar returns the unfixed variable with the most fractional
// value in the node relaxation (shared with the bound — no second solve),
// or -1.
func (s *solver) lpFractionalVar() int {
	res := s.nodeLP()
	if res.Status != lp.Optimal {
		return -1
	}
	best, bestDist := -1, 2.0
	for j, x := range res.X {
		if s.fixed[j] != -1 {
			continue
		}
		d := math.Abs(x - 0.5)
		if d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}
