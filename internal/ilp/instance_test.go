package ilp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// knapsackModel builds a small mixed model: a knapsack row, a cover row,
// and a capacity row — the EC re-solve shape in miniature.
func knapsackModel() *Model {
	m := NewModel(false)
	for j := 0; j < 8; j++ {
		m.AddVar("", float64(1+j%4))
	}
	m.AddRow("kn", []Coef{{0, 5}, {1, 4}, {2, 3}, {3, 2}}, LE, 8)
	m.AddRow("cov", []Coef{{2, 1}, {3, 1}, {4, 1}, {5, 1}}, GE, 1)
	m.AddRow("cap", []Coef{{4, 2}, {5, 2}, {6, 2}, {7, 2}}, LE, 6)
	return m
}

func assertSameAnswer(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status %v, want %v", tag, got.Status, want.Status)
	}
	if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("%s: objective %v, want %v", tag, got.Objective, want.Objective)
	}
}

// TestInstanceRHSDeltaMatchesScratch drives a sequence of RHS edits
// through one Instance and checks every resolve against a scratch solve
// of an identical model, including the new counters.
func TestInstanceRHSDeltaMatchesScratch(t *testing.T) {
	inst := NewInstance(knapsackModel())
	res := inst.Resolve(Options{})
	assertSameAnswer(t, "initial", res, Solve(knapsackModel(), Options{}))
	if res.InstanceReused != 0 || res.RowsDelta != 0 {
		t.Fatalf("first resolve counters: reused=%d delta=%d, want 0/0", res.InstanceReused, res.RowsDelta)
	}

	rhs := []float64{7, 5, 9, 8, 6}
	for step, b := range rhs {
		if !inst.SetRHS("kn", b) {
			t.Fatalf("SetRHS kn failed")
		}
		scratch := knapsackModel()
		scratch.rows[0].RHS = b
		want := Solve(scratch, Options{})
		got := inst.Resolve(Options{})
		assertSameAnswer(t, fmt.Sprintf("step %d rhs=%g", step, b), got, want)
		if got.InstanceReused != int64(step+1) {
			t.Fatalf("step %d: InstanceReused=%d, want %d", step, got.InstanceReused, step+1)
		}
		if got.RowsDelta != 1 {
			t.Fatalf("step %d: RowsDelta=%d, want 1", step, got.RowsDelta)
		}
	}
}

// TestInstanceNoopResolve: a second resolve of an unchanged model with a
// proven answer is served from the retained result.
func TestInstanceNoopResolve(t *testing.T) {
	inst := NewInstance(knapsackModel())
	first := inst.Resolve(Options{})
	if first.Status != Optimal {
		t.Fatalf("status %v", first.Status)
	}
	second := inst.Resolve(Options{})
	assertSameAnswer(t, "noop", second, first)
	if second.InstanceReused != 1 || second.RowsDelta != 0 {
		t.Fatalf("noop counters: reused=%d delta=%d", second.InstanceReused, second.RowsDelta)
	}
	// Different answer-relevant options must not be served from the cache:
	// a node-limited solve can legitimately differ.
	third := inst.Resolve(Options{MaxNodes: 1})
	if third.Status == Optimal && math.Abs(third.Objective-first.Objective) > 1e-9 {
		t.Fatalf("limited resolve returned a wrong 'optimal': %+v", third)
	}
}

// TestInstanceAddRemoveRows: row adds and removes rebuild correctly and
// match scratch solves; removal by name also covers compaction.
func TestInstanceAddRemoveRows(t *testing.T) {
	inst := NewInstance(knapsackModel())
	inst.Resolve(Options{})

	inst.AddRows([]Row{
		{Name: "extra", Coefs: []Coef{{0, 1}, {7, 1}}, Sense: LE, RHS: 1},
		{Name: "force", Coefs: []Coef{{6, 1}, {7, 1}}, Sense: GE, RHS: 1},
	})
	scratch := knapsackModel()
	scratch.AddRow("extra", []Coef{{0, 1}, {7, 1}}, LE, 1)
	scratch.AddRow("force", []Coef{{6, 1}, {7, 1}}, GE, 1)
	got := inst.Resolve(Options{})
	assertSameAnswer(t, "after add", got, Solve(scratch, Options{}))
	if got.RowsDelta != 2 {
		t.Fatalf("RowsDelta=%d, want 2", got.RowsDelta)
	}

	if n := inst.RemoveRows([]string{"extra", "nosuch"}); n != 1 {
		t.Fatalf("RemoveRows removed %d, want 1", n)
	}
	scratch2 := knapsackModel()
	scratch2.AddRow("force", []Coef{{6, 1}, {7, 1}}, GE, 1)
	assertSameAnswer(t, "after remove", inst.Resolve(Options{}), Solve(scratch2, Options{}))
	if fp := inst.Fingerprint(); fp != ModelFingerprint(scratch2) {
		t.Fatalf("fingerprint after remove diverged from scratch model")
	}
}

// TestInstancePinVar: pins force values through resolves and unpin
// restores the original optimum.
func TestInstancePinVar(t *testing.T) {
	inst := NewInstance(knapsackModel())
	base := inst.Resolve(Options{})

	inst.PinVar(4, 1)
	res := inst.Resolve(Options{})
	if res.Status != Optimal || res.Solution[4] != 1 {
		t.Fatalf("pin to 1 not honored: %+v", res)
	}
	inst.PinVar(4, 0)
	res = inst.Resolve(Options{})
	if res.Status != Optimal || res.Solution[4] != 0 {
		t.Fatalf("re-pin to 0 not honored: %+v", res)
	}
	if !inst.UnpinVar(4) {
		t.Fatal("UnpinVar found no pin")
	}
	if inst.UnpinVar(4) {
		t.Fatal("double unpin succeeded")
	}
	assertSameAnswer(t, "after unpin", inst.Resolve(Options{}), base)
}

// TestInstanceCoverGuardRebuild: an RHS edit that moves a GE row onto or
// off RHS 1 crosses the cover-structure boundary and must still answer
// exactly (the instance rebuilds the kernel under the hood).
func TestInstanceCoverGuardRebuild(t *testing.T) {
	inst := NewInstance(knapsackModel())
	inst.Resolve(Options{})
	for _, b := range []float64{2, 1, 3} {
		inst.SetRHS("cov", b)
		scratch := knapsackModel()
		scratch.rows[1].RHS = b
		assertSameAnswer(t, fmt.Sprintf("cov rhs=%g", b), inst.Resolve(Options{}), Solve(scratch, Options{}))
	}
}

// TestInstanceCutsReseparation: with cuts on, an instance re-solve after
// one row edit only re-separates that row.
func TestInstanceCutsReseparation(t *testing.T) {
	inst := NewInstance(knapsackModel())
	first := inst.Resolve(Options{Cuts: true})
	if first.ReseparatedRows == 0 {
		t.Fatalf("first cut solve separated no rows: %+v", first)
	}
	inst.SetRHS("kn", 7)
	second := inst.Resolve(Options{Cuts: true})
	if second.ReseparatedRows >= first.ReseparatedRows {
		t.Fatalf("re-solve re-separated %d rows (first %d), want fewer",
			second.ReseparatedRows, first.ReseparatedRows)
	}
	assertSameAnswer(t, "cuts delta", second, func() Result {
		m := knapsackModel()
		m.rows[0].RHS = 7
		return Solve(m, Options{})
	}())
}

// TestInstancePresolveCacheReuse: resolving an unchanged model twice with
// presolve on under different node budgets reuses the cached reduction
// and still answers exactly.
func TestInstancePresolveCacheReuse(t *testing.T) {
	inst := NewInstance(knapsackModel())
	want := Solve(knapsackModel(), Options{})
	a := inst.Resolve(Options{Presolve: true, MaxNodes: 1 << 20})
	b := inst.Resolve(Options{Presolve: true, MaxNodes: 1 << 21})
	assertSameAnswer(t, "presolve a", a, want)
	assertSameAnswer(t, "presolve b", b, want)
	if inst.preCache.pre == nil {
		t.Fatal("presolve cache not retained")
	}
	inst.SetRHS("kn", 7)
	if inst.preCache.pre != nil {
		t.Fatal("presolve cache survived a model edit")
	}
}

// TestInstanceCompaction: removing many rows triggers tombstone
// compaction without changing answers or addressability.
func TestInstanceCompaction(t *testing.T) {
	m := NewModel(false)
	for j := 0; j < 10; j++ {
		m.AddVar("", 1)
	}
	var names []string
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("r%d", i)
		names = append(names, name)
		m.AddRow(name, []Coef{{i % 10, 1}, {(i + 1) % 10, 1}}, LE, 1)
	}
	m.AddRow("keep", []Coef{{0, 1}, {5, 1}}, GE, 1)
	inst := NewInstance(m)
	inst.Resolve(Options{})
	if n := inst.RemoveRows(names); n != 40 {
		t.Fatalf("removed %d, want 40", n)
	}
	if inst.m.NumRows() != 1 {
		t.Fatalf("compaction left %d rows, want 1", inst.m.NumRows())
	}
	scratch := NewModel(false)
	for j := 0; j < 10; j++ {
		scratch.AddVar("", 1)
	}
	scratch.AddRow("keep", []Coef{{0, 1}, {5, 1}}, GE, 1)
	assertSameAnswer(t, "after compaction", inst.Resolve(Options{}), Solve(scratch, Options{}))
	if !inst.SetRHS("keep", 2) {
		t.Fatal("surviving row lost addressability after compaction")
	}
}

// TestInstanceRandomDifferential: random delta scripts through an
// Instance must answer exactly like scratch solves of an identically
// mutated model, under every options shape.
func TestInstanceRandomDifferential(t *testing.T) {
	optsList := []Options{
		{},
		{Bounding: LPBound},
		{Presolve: true, Cuts: true},
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		opts := optsList[seed%int64(len(optsList))]
		build := func() *Model {
			m := NewModel(rng.Intn(2) == 0)
			n := 6 + rng.Intn(5)
			for j := 0; j < n; j++ {
				m.AddVar("", float64(rng.Intn(7)-3))
			}
			for i := 0; i < 4+rng.Intn(4); i++ {
				var coefs []Coef
				for j := 0; j < n; j++ {
					if rng.Intn(3) == 0 {
						coefs = append(coefs, Coef{j, float64(1 + rng.Intn(4))})
					}
				}
				if len(coefs) == 0 {
					coefs = []Coef{{rng.Intn(n), 1}}
				}
				m.AddRow(fmt.Sprintf("r%d", i), coefs, Sense(rng.Intn(3)), float64(rng.Intn(6)))
			}
			return m
		}
		base := build()
		inst := NewInstance(base.Clone())
		scratch := base.Clone()
		assertSameAnswer(t, fmt.Sprintf("seed %d initial", seed), inst.Resolve(opts), Solve(scratch, opts))

		for step := 0; step < 8; step++ {
			switch rng.Intn(4) {
			case 0: // RHS edit on a random live named row
				i := rng.Intn(scratch.NumRows())
				name := scratch.RowAt(i).Name
				if name == "" {
					continue
				}
				b := float64(rng.Intn(7))
				inst.SetRHS(name, b)
				for k := 0; k < scratch.NumRows(); k++ {
					if scratch.rows[k].Name == name {
						scratch.rows[k].RHS = b
					}
				}
			case 1: // add a row
				var coefs []Coef
				for j := 0; j < scratch.NumVars(); j++ {
					if rng.Intn(4) == 0 {
						coefs = append(coefs, Coef{j, float64(1 + rng.Intn(3))})
					}
				}
				if len(coefs) == 0 {
					coefs = []Coef{{0, 1}}
				}
				name := fmt.Sprintf("a%d_%d", seed, step)
				sense := Sense(rng.Intn(3))
				rhs := float64(rng.Intn(6))
				inst.AddRows([]Row{{Name: name, Coefs: coefs, Sense: sense, RHS: rhs}})
				scratch.AddRow(name, coefs, sense, rhs)
			case 2: // objective edit
				j := rng.Intn(scratch.NumVars())
				c := float64(rng.Intn(7) - 3)
				inst.SetObj(j, c)
				scratch.SetObj(j, c)
			case 3: // pin / unpin
				j := rng.Intn(scratch.NumVars())
				if rng.Intn(2) == 0 {
					v := int8(rng.Intn(2))
					inst.PinVar(j, v)
					upsertPin(scratch, j, v)
				} else {
					inst.UnpinVar(j)
					dropPin(scratch, j)
				}
			}
			got := inst.Resolve(opts)
			want := Solve(scratch, opts)
			assertSameAnswer(t, fmt.Sprintf("seed %d step %d", seed, step), got, want)
			if got.Status == Optimal && !scratch.Feasible(got.Solution) {
				t.Fatalf("seed %d step %d: instance solution infeasible on scratch model", seed, step)
			}
		}
	}
}

// upsertPin mirrors Instance.PinVar on a scratch model.
func upsertPin(m *Model, j int, v int8) {
	name := pinName(j)
	for i := range m.rows {
		if m.rows[i].Name == name {
			m.rows[i].RHS = float64(v)
			return
		}
	}
	m.AddRow(name, []Coef{{j, 1}}, EQ, float64(v))
}

// dropPin mirrors Instance.UnpinVar on a scratch model.
func dropPin(m *Model, j int) {
	name := pinName(j)
	kept := m.rows[:0]
	for _, r := range m.rows {
		if r.Name != name {
			kept = append(kept, r)
		}
	}
	m.rows = kept
}
