package ilp

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
)

// This file is the cutting-plane layer: valid inequalities separated from
// the model's rows that tighten both the LP relaxation (LPBound mode) and
// pseudo-Boolean propagation (every mode — cut rows join the worklist
// like any other row). Two families are separated:
//
//   - lifted cover cuts from knapsack-style rows (all-positive
//     coefficients after ≤ normalization): a minimal cover C with
//     Σ_{i∈C} a_i > b yields Σ x_i ≤ |C|-1, extended with every column
//     whose coefficient is at least max_{i∈C} a_i;
//   - clique cuts from the pairwise-conflict graph: rows implying
//     x_u + x_v ≤ 1 are conflict edges, and a greedy clique K of size ≥ 3
//     yields Σ_{i∈K} x_i ≤ 1, dominating the |K|² edge constraints.
//
// The pool is the EC-specific part: cuts are RETAINED across re-solves
// and keyed by a content hash of their source row, so a re-solve after an
// engineering change re-separates only the rows the change touched —
// unchanged rows are served from the pool. Clique cuts are re-validated
// against the current conflict-edge set (cheap set lookups) and new
// cliques are grown only from edges that did not exist on the previous
// solve. Entries whose source rows disappear are garbage-collected after
// poolRetainGens solves.

// Cut is one valid inequality Σ Coefs·x ≤ RHS over the variables of the
// model it was separated from. Cuts are implied by the model's integer
// feasible set, so adding them never changes the solver's status or
// objective (only the search effort).
type Cut struct {
	Coefs []Coef
	RHS   float64
}

const (
	// poolRetainGens is how many separate() calls an unused pool entry
	// survives before eviction.
	poolRetainGens = 32
	// maxEdgesPerRow caps the pairwise-conflict edges extracted from one
	// knapsack row (dense rows would otherwise cost O(len²)).
	maxEdgesPerRow = 256
	// maxCliques caps the cliques grown per separate() call.
	maxCliques = 512
)

// poolEntry holds the cuts separated from one source row.
type poolEntry struct {
	cuts []Cut
	gen  int64
}

// clique is one retained conflict-graph clique.
type clique struct {
	members []int
	key     string
}

// CutPool separates cutting planes for a model and retains them across
// solves. A long-lived pool (one per EC session) makes re-solves after a
// change pay separation cost only for the changed rows. The zero value is
// not usable; create pools with NewCutPool. All methods are safe for
// concurrent use.
type CutPool struct {
	mu        sync.Mutex
	gen       int64
	rows      map[uint64]*poolEntry
	cliques   []clique
	prevEdges map[uint64]struct{}
}

// NewCutPool returns an empty pool.
func NewCutPool() *CutPool {
	return &CutPool{
		rows:      make(map[uint64]*poolEntry),
		prevEdges: make(map[uint64]struct{}),
	}
}

// Len returns the number of retained source-row entries plus cliques.
func (p *CutPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.rows) + len(p.cliques)
}

// separate returns the cut set for m in m's variable space, reusing pool
// entries whose source rows are content-identical to a previous solve and
// separating fresh rows only. added counts newly separated cuts, reused
// counts cuts served from the pool, and freshRows counts source rows that
// had no pool entry and paid full separation — on an EC re-solve through a
// retained pool this is exactly the set of rows the change touched.
func (p *CutPool) separate(m *Model) (cuts []Cut, added, reused, freshRows int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen++

	edges := make(map[uint64]struct{})
	seen := make(map[string]bool) // canonical cut keys, for cross-family dedupe
	var keyBuf []byte

	emit := func(c Cut, fresh bool) {
		keyBuf = cutKey(keyBuf[:0], c)
		if seen[string(keyBuf)] {
			return
		}
		seen[string(keyBuf)] = true
		cuts = append(cuts, c)
		if fresh {
			added++
		} else {
			reused++
		}
	}

	for _, r := range m.rows {
		for _, le := range leForms(r) {
			if !knapsackShaped(le.coefs, le.rhs) {
				continue
			}
			collectConflictEdges(le.coefs, le.rhs, edges)
			h := hashRowLE(le.coefs, le.rhs)
			entry, ok := p.rows[h]
			if !ok {
				entry = &poolEntry{cuts: coverCutsForRow(le.coefs, le.rhs)}
				p.rows[h] = entry
				freshRows++
			}
			fresh := entry.gen == 0
			entry.gen = p.gen
			for _, c := range entry.cuts {
				emit(c, fresh)
			}
		}
	}
	for h, entry := range p.rows {
		if p.gen-entry.gen >= poolRetainGens {
			delete(p.rows, h)
		}
	}

	// Cliques: keep the retained ones still fully supported by the
	// current conflict graph, then grow new ones only from edges that did
	// not exist on the previous solve.
	kept := p.cliques[:0]
	for _, cl := range p.cliques {
		if cliqueValid(cl.members, edges) {
			kept = append(kept, cl)
			emit(Cut{Coefs: unitCoefs(cl.members), RHS: 1}, false)
		}
	}
	p.cliques = kept
	if len(edges) > 0 {
		adj := buildAdjacency(edges)
		cliqueKeys := make(map[string]bool, len(p.cliques))
		for _, cl := range p.cliques {
			cliqueKeys[cl.key] = true
		}
		newEdges := make([]uint64, 0, len(edges))
		for e := range edges {
			if _, old := p.prevEdges[e]; !old {
				newEdges = append(newEdges, e)
			}
		}
		sort.Slice(newEdges, func(a, b int) bool { return newEdges[a] < newEdges[b] })
		for _, e := range newEdges {
			if len(p.cliques) >= maxCliques {
				break
			}
			members := growClique(int(e>>32), int(e&0xffffffff), adj, edges)
			if len(members) < 3 {
				continue
			}
			keyBuf = cutKey(keyBuf[:0], Cut{Coefs: unitCoefs(members), RHS: 1})
			if cliqueKeys[string(keyBuf)] {
				continue
			}
			cliqueKeys[string(keyBuf)] = true
			p.cliques = append(p.cliques, clique{members: members, key: string(keyBuf)})
			emit(Cut{Coefs: unitCoefs(members), RHS: 1}, true)
		}
	}
	p.prevEdges = edges
	return cuts, added, reused, freshRows
}

// ---- row normalization ---------------------------------------------------

// leForm is one ≤-normalized row with canonical (sorted, merged, nonzero)
// coefficients.
type leForm struct {
	coefs []Coef
	rhs   float64
}

// leForms returns the ≤-normalized forms of a row: one for LE, the
// negation for GE, and both directions for EQ.
func leForms(r Row) []leForm {
	switch r.Sense {
	case LE:
		return []leForm{{canonCoefs(r.Coefs, false), r.RHS}}
	case GE:
		return []leForm{{canonCoefs(r.Coefs, true), -r.RHS}}
	default:
		return []leForm{
			{canonCoefs(r.Coefs, false), r.RHS},
			{canonCoefs(r.Coefs, true), -r.RHS},
		}
	}
}

// canonCoefs copies coefs (negated when asked) and canonicalizes them.
func canonCoefs(coefs []Coef, negate bool) []Coef {
	out := make([]Coef, 0, len(coefs))
	for _, c := range coefs {
		v := c.Val
		if negate {
			v = -v
		}
		out = append(out, Coef{c.Var, v})
	}
	return canonicalizeCoefs(out)
}

// canonicalizeCoefs sorts coefs by variable, merges duplicate variables,
// and drops zero coefficients, in place. Shared by cut separation and
// the presolve row compaction.
func canonicalizeCoefs(out []Coef) []Coef {
	sort.Slice(out, func(a, b int) bool { return out[a].Var < out[b].Var })
	merged := out[:0]
	for _, c := range out {
		if len(merged) > 0 && merged[len(merged)-1].Var == c.Var {
			merged[len(merged)-1].Val += c.Val
			continue
		}
		merged = append(merged, c)
	}
	out = merged[:0]
	for _, c := range merged {
		if c.Val != 0 {
			out = append(out, c)
		}
	}
	return out
}

// knapsackShaped reports whether a ≤-form row supports cover/conflict
// separation: at least two all-positive coefficients and a positive
// right-hand side (non-positive rhs rows force everything to zero and are
// presolve territory).
func knapsackShaped(coefs []Coef, rhs float64) bool {
	if len(coefs) < 2 || rhs <= solveEps {
		return false
	}
	for _, c := range coefs {
		if c.Val <= 0 {
			return false
		}
	}
	return true
}

// ---- cover cuts ----------------------------------------------------------

// coverCutsForRow separates up to two lifted minimal-cover cuts from one
// knapsack ≤-row: one grown from the largest coefficients (smallest
// cardinality, prunes the heavy items) and one from the smallest (largest
// cardinality, lifts to the widest variable set).
func coverCutsForRow(coefs []Coef, rhs float64) []Cut {
	total := 0.0
	for _, c := range coefs {
		total += c.Val
	}
	if total <= rhs+solveEps {
		return nil // the row admits the all-ones point: no cover exists
	}
	desc := append([]Coef(nil), coefs...)
	sort.Slice(desc, func(a, b int) bool { return desc[a].Val > desc[b].Val })

	var cuts []Cut
	var keyBuf []byte
	seen := make(map[string]bool, 2)
	for _, fromLargest := range []bool{true, false} {
		cover := greedyCover(desc, rhs, fromLargest)
		if len(cover) < 2 {
			// A singleton cover means the variable is simply forced to 0;
			// root propagation already handles that without a cut row.
			continue
		}
		cut, ok := liftCover(coefs, rhs, cover)
		if !ok {
			continue
		}
		keyBuf = cutKey(keyBuf[:0], cut)
		if seen[string(keyBuf)] {
			continue
		}
		seen[string(keyBuf)] = true
		cuts = append(cuts, cut)
	}
	return cuts
}

// greedyCover builds a minimal cover from desc (sorted by descending
// coefficient): a prefix scan from the largest or smallest end until the
// sum exceeds rhs, then shedding members smallest-first while the cover
// property survives.
func greedyCover(desc []Coef, rhs float64, fromLargest bool) []Coef {
	var cover []Coef
	sum := 0.0
	if fromLargest {
		for _, c := range desc {
			cover = append(cover, c)
			sum += c.Val
			if sum > rhs+solveEps {
				break
			}
		}
	} else {
		for i := len(desc) - 1; i >= 0; i-- {
			cover = append(cover, desc[i])
			sum += desc[i].Val
			if sum > rhs+solveEps {
				break
			}
		}
	}
	if sum <= rhs+solveEps {
		return nil
	}
	// Minimalize: drop smallest-coefficient members that are not needed.
	sort.Slice(cover, func(a, b int) bool { return cover[a].Val < cover[b].Val })
	out := cover[:0]
	for i, c := range cover {
		if sum-c.Val > rhs+solveEps {
			sum -= c.Val
			continue
		}
		out = append(out, cover[i])
	}
	return out
}

// liftCover turns a minimal cover into the lifted cut
// Σ_{C ∪ L} x ≤ |C|-1 with L = {j ∉ C : a_j ≥ max_{i∈C} a_i}: any
// |C|-subset of the lifted set sums past rhs, so the cut is valid. ok is
// false when the cut degenerates to the source row itself.
func liftCover(coefs []Coef, rhs float64, cover []Coef) (Cut, bool) {
	maxC := 0.0
	inCover := make(map[int]bool, len(cover))
	for _, c := range cover {
		inCover[c.Var] = true
		if c.Val > maxC {
			maxC = c.Val
		}
	}
	vars := make([]int, 0, len(coefs))
	for _, c := range cover {
		vars = append(vars, c.Var)
	}
	allUnit := true
	for _, c := range coefs {
		if c.Val != 1 {
			allUnit = false
		}
		if !inCover[c.Var] && c.Val >= maxC-solveEps {
			vars = append(vars, c.Var)
		}
	}
	cutRHS := float64(len(cover) - 1)
	if allUnit && len(vars) == len(coefs) && cutRHS >= rhs-solveEps {
		return Cut{}, false // identical to (or weaker than) the source row
	}
	sort.Ints(vars)
	return Cut{Coefs: unitCoefs(vars), RHS: cutRHS}, true
}

// ---- conflict graph / clique cuts ----------------------------------------

// collectConflictEdges adds every variable pair of one knapsack ≤-row
// whose coefficients cannot both be 1 (a_i + a_j > rhs) to the conflict
// edge set, capped at maxEdgesPerRow.
func collectConflictEdges(coefs []Coef, rhs float64, edges map[uint64]struct{}) {
	desc := append([]Coef(nil), coefs...)
	sort.Slice(desc, func(a, b int) bool { return desc[a].Val > desc[b].Val })
	n := 0
	for i := 0; i < len(desc) && n < maxEdgesPerRow; i++ {
		for j := i + 1; j < len(desc) && n < maxEdgesPerRow; j++ {
			if desc[i].Val+desc[j].Val <= rhs+solveEps {
				break // sorted: later j are smaller still
			}
			edges[packEdge(desc[i].Var, desc[j].Var)] = struct{}{}
			n++
		}
	}
}

func packEdge(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// buildAdjacency expands the edge set into sorted adjacency lists.
func buildAdjacency(edges map[uint64]struct{}) map[int][]int {
	adj := make(map[int][]int)
	for e := range edges {
		u, v := int(e>>32), int(uint32(e))
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for u := range adj {
		sort.Ints(adj[u])
	}
	return adj
}

// growClique greedily extends the edge {u, v} with common neighbors that
// are adjacent to every current member.
func growClique(u, v int, adj map[int][]int, edges map[uint64]struct{}) []int {
	members := []int{u, v}
	for _, w := range adj[u] {
		if w == v {
			continue
		}
		ok := true
		for _, m := range members {
			if w == m {
				ok = false
				break
			}
			if _, e := edges[packEdge(w, m)]; !e {
				ok = false
				break
			}
		}
		if ok {
			members = append(members, w)
		}
	}
	sort.Ints(members)
	return members
}

// cliqueValid reports whether every member pair is still a conflict edge.
func cliqueValid(members []int, edges map[uint64]struct{}) bool {
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if _, ok := edges[packEdge(members[i], members[j])]; !ok {
				return false
			}
		}
	}
	return true
}

// unitCoefs returns unit coefficients over vars.
func unitCoefs(vars []int) []Coef {
	out := make([]Coef, len(vars))
	for i, v := range vars {
		out[i] = Coef{v, 1}
	}
	return out
}

// ---- hashing -------------------------------------------------------------

// hashRowLE is an FNV-1a content hash of a canonical ≤-form row — the
// pool key that survives row reordering across re-solves.
func hashRowLE(coefs []Coef, rhs float64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	for _, c := range coefs {
		mix(uint64(c.Var))
		mix(math.Float64bits(c.Val))
	}
	mix(math.Float64bits(rhs))
	return h
}

// cutKey appends a canonical byte encoding of a cut to buf (dedupe key).
func cutKey(buf []byte, c Cut) []byte {
	for _, cf := range c.Coefs {
		buf = appendUvarint(buf, uint64(cf.Var))
		buf = appendFloatBits(buf, cf.Val)
	}
	return appendFloatBits(buf, c.RHS)
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendFloatBits(buf []byte, v float64) []byte {
	return binary.AppendUvarint(buf, math.Float64bits(v))
}
