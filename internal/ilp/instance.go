package ilp

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Instance is a long-lived solver object wrapping one Model — the paper's
// "same model ± a few rows" made literal. Where Solve treats every call as
// a fresh problem, an Instance accumulates deltas (AddRows / RemoveRows /
// SetRHS / SetObj / PinVar / UnpinVar) and Resolve reuses whatever state
// the edits left valid:
//
//   - the branch-and-bound kernel (normalized rows, flat column index,
//     trail arena, cover structure) survives RHS-only edits outright —
//     edited right-hand sides are patched in place;
//   - the LP relaxation basis survives with it: an RHS edit becomes a
//     slack-bound shift in the retained simplex, so the next root solve is
//     a dual-simplex-style reoptimization instead of a cold start (see
//     lp.Solver);
//   - the presolve reduction is retained while the model is unchanged and
//     invalidated by any edit;
//   - the cut pool is retained across all edits — content-keyed entries
//     mean a re-solve re-separates only the rows a delta touched
//     (Result.ReseparatedRows);
//   - the previous solution becomes the warm start when the caller
//     supplies none.
//
// Structural edits (row adds/removes, objective edits, pin changes) are
// tracked and force the kernel to rebuild from the mutated model on the
// next Resolve; the cut pool and warm start still carry over, so even a
// rebuilt resolve is cheaper than a scratch solve. The Instance owns its
// Model: callers must not mutate it behind the Instance's back.
//
// All methods are safe for concurrent use; Resolve serializes.
type Instance struct {
	mu sync.Mutex
	m  *Model

	// rowIdx maps row names to live model-row indices. Unnamed rows are
	// not addressable by deltas (they can only be replaced by a rebuild).
	rowIdx map[string][]int
	// tombstones counts removed rows still occupying a model slot (they
	// are blanked in place so live indices stay stable; compaction
	// reclaims them once they outnumber half the live rows).
	tombstones int

	// Retained kernel (RHS-only fast path).
	kern *solver
	// normIdx maps each model-row index to its first normalized-row index
	// inside kern (an EQ row owns two consecutive normalized rows).
	normIdx []int
	// rhsDirty lists model rows whose RHS changed since the kernel was
	// built or last patched.
	rhsDirty map[int]float64
	// structDirty is set by any edit the retained kernel cannot absorb.
	structDirty bool

	// preCache retains the presolve reduction of the current (unedited)
	// model; any edit clears it.
	preCache presolveCache

	pool *CutPool

	resolves     int64 // completed Resolve calls
	pendingDelta int64 // row edits since the previous Resolve

	lastSol     Solution
	lastRes     Result
	hasLast     bool
	lastOptsKey string
	dirty       bool // any edit since the previous Resolve
}

// NewInstance wraps m (taking ownership) in a fresh Instance with an
// empty retained cut pool.
func NewInstance(m *Model) *Instance {
	in := &Instance{m: m, pool: NewCutPool(), rhsDirty: make(map[int]float64)}
	in.rebuildRowIndex()
	return in
}

// Model returns the wrapped model. Treat it as read-only: all mutations
// must go through the Instance's delta methods.
func (in *Instance) Model() *Model {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.m
}

// Pool returns the instance's retained cut pool.
func (in *Instance) Pool() *CutPool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.pool
}

// isTombstone reports whether a model row slot holds a removed row.
func isTombstone(r Row) bool {
	return r.Name == "" && len(r.Coefs) == 0 && r.Sense == LE && r.RHS == 0
}

func (in *Instance) rebuildRowIndex() {
	in.rowIdx = make(map[string][]int)
	in.tombstones = 0
	for i := 0; i < in.m.NumRows(); i++ {
		r := in.m.RowAt(i)
		if isTombstone(r) {
			in.tombstones++
			continue
		}
		if r.Name != "" {
			in.rowIdx[r.Name] = append(in.rowIdx[r.Name], i)
		}
	}
}

// noteEdit records bookkeeping common to every delta method.
func (in *Instance) noteEdit(rows int, structural bool) {
	in.pendingDelta += int64(rows)
	in.dirty = true
	in.preCache.pre = nil
	if structural {
		in.structDirty = true
	}
}

// AddRows appends rows to the model. Named rows become addressable by
// RemoveRows/SetRHS; coefficients must reference existing variables.
func (in *Instance) AddRows(rows []Row) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range rows {
		i := in.m.AddRow(r.Name, r.Coefs, r.Sense, r.RHS)
		if r.Name != "" {
			in.rowIdx[r.Name] = append(in.rowIdx[r.Name], i)
		}
	}
	if len(rows) > 0 {
		in.noteEdit(len(rows), true)
	}
}

// RemoveRows removes every live row whose name appears in names and
// returns how many rows were removed. Removed slots are blanked in place
// (keeping other rows' indices stable) and compacted away once they
// outnumber half the live rows.
func (in *Instance) RemoveRows(names []string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	removed := 0
	for _, name := range names {
		if name == "" {
			continue
		}
		for _, i := range in.rowIdx[name] {
			in.m.rows[i] = Row{}
			delete(in.rhsDirty, i)
			removed++
		}
		if len(in.rowIdx[name]) > 0 {
			delete(in.rowIdx, name)
		}
	}
	if removed == 0 {
		return 0
	}
	in.tombstones += removed
	in.noteEdit(removed, true)
	if live := in.m.NumRows() - in.tombstones; in.tombstones > 16 && in.tombstones > live/2 {
		in.compactLocked()
	}
	return removed
}

// compactLocked rewrites the model without tombstone slots.
func (in *Instance) compactLocked() {
	kept := in.m.rows[:0]
	for _, r := range in.m.rows {
		if !isTombstone(r) {
			kept = append(kept, r)
		}
	}
	in.m.rows = kept
	in.rhsDirty = make(map[int]float64)
	in.rebuildRowIndex()
	in.structDirty = true
}

// SetRHS sets the right-hand side of every live row named name, returning
// false when no such row exists. An RHS edit is the cheapest delta: the
// retained kernel and LP basis absorb it without rebuilding.
func (in *Instance) SetRHS(name string, rhs float64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.rowIdx[name]
	if len(idx) == 0 {
		return false
	}
	for _, i := range idx {
		r := &in.m.rows[i]
		if r.RHS == rhs {
			continue
		}
		// Cover-row guard: the kernel's counting bound and greedy branching
		// key off Σx {≥,=} 1 rows, so an edit that moves a GE/EQ row onto
		// or off RHS 1 changes the cover structure and needs a rebuild.
		if r.Sense != LE && (r.RHS == 1 || rhs == 1) {
			in.structDirty = true
		}
		r.RHS = rhs
		in.rhsDirty[i] = rhs
		in.noteEdit(1, false)
	}
	return true
}

// SetObj sets variable j's objective coefficient. Objective edits rebuild
// the kernel on the next Resolve (the bound terms, cover negative counts,
// and LP costs all derive from it).
func (in *Instance) SetObj(j int, c float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.m.Obj(j) == c {
		return
	}
	in.m.SetObj(j, c)
	in.noteEdit(1, true)
}

// pinName is the reserved row-name prefix for PinVar rows.
func pinName(j int) string { return fmt.Sprintf("__pin%d", j) }

// PinVar fixes variable j to v (0 or 1) via a unit equality row until
// UnpinVar — the linajea-style "pinned variables across many solves"
// pattern. Re-pinning to the same value is a no-op.
func (in *Instance) PinVar(j int, v int8) {
	if v != 0 && v != 1 {
		panic(fmt.Sprintf("ilp: pin value %d not 0/1", v))
	}
	name := pinName(j)
	in.mu.Lock()
	idx := in.rowIdx[name]
	in.mu.Unlock()
	if len(idx) > 0 {
		in.SetRHS(name, float64(v))
		return
	}
	in.AddRows([]Row{{Name: name, Coefs: []Coef{{Var: j, Val: 1}}, Sense: EQ, RHS: float64(v)}})
}

// UnpinVar removes variable j's pin row, reporting whether one existed.
func (in *Instance) UnpinVar(j int) bool {
	return in.RemoveRows([]string{pinName(j)}) > 0
}

// Fingerprint returns an order-insensitive content hash of the live model
// (rows as a multiset, objective, direction). Two instances that arrived
// at the same model through different delta orders fingerprint equal;
// conformance tests compare delta-built instances against full re-encodes
// with it.
func (in *Instance) Fingerprint() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return ModelFingerprint(in.m)
}

// ModelFingerprint is Instance.Fingerprint over a bare model.
func ModelFingerprint(m *Model) uint64 {
	hashRow := func(r Row) uint64 {
		h := uint64(14695981039346656037)
		mix := func(x uint64) {
			for i := 0; i < 8; i++ {
				h ^= x & 0xff
				h *= 1099511628211
				x >>= 8
			}
		}
		for _, b := range []byte(r.Name) {
			mix(uint64(b))
		}
		mix(uint64(r.Sense))
		mix(math.Float64bits(r.RHS))
		cs := canonCoefs(r.Coefs, false)
		for _, c := range cs {
			mix(uint64(c.Var))
			mix(math.Float64bits(c.Val))
		}
		return h
	}
	var sum uint64
	for i := 0; i < m.NumRows(); i++ {
		r := m.RowAt(i)
		if isTombstone(r) {
			continue
		}
		sum += hashRow(r) // wrapping sum: order-insensitive, duplicates count
	}
	if m.Maximize {
		sum += 1
	}
	for j := 0; j < m.NumVars(); j++ {
		sum += hashRow(Row{Name: m.VarName(j), RHS: m.Obj(j), Sense: -1})
	}
	return sum
}

// optsKey digests the answer-relevant options for the unchanged-model
// shortcut (Presolve/Cuts are answer-equivalent and excluded, exactly as
// in Options.Fingerprint).
func optsKey(o Options) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d", o.Bounding, o.Branching, o.MaxNodes, o.TimeLimit, o.Workers)
}

// Resolve solves the instance's current model. The zero-delta case with a
// previously proven answer returns it outright; RHS-only deltas run on
// the retained kernel and LP basis; structural deltas rebuild the kernel
// but keep the cut pool and warm start. When opts carries no WarmStart
// the previous solution (if any) is used; when opts.Cuts is set without a
// CutPool the instance's retained pool is bound in.
func (in *Instance) Resolve(opts Options) Result {
	in.mu.Lock()
	defer in.mu.Unlock()
	start := time.Now()

	if opts.Cuts && opts.CutPool == nil {
		opts.CutPool = in.pool
	}
	if opts.WarmStart == nil && in.lastSol != nil && len(in.lastSol) == in.m.NumVars() {
		opts.WarmStart = in.lastSol
	}
	key := optsKey(opts)

	// Unchanged model + same answer-relevant options + proven answer:
	// nothing can have changed; serve the retained result.
	if !in.dirty && in.hasLast && key == in.lastOptsKey &&
		(in.lastRes.Status == Optimal || in.lastRes.Status == Infeasible) {
		res := in.lastRes
		if res.Solution != nil {
			res.Solution = res.Solution.Clone()
		}
		res.InstanceReused = in.resolves
		res.RowsDelta = 0
		res.ReseparatedRows = 0
		res.Runtime = time.Since(start)
		in.resolves++
		return res
	}

	reused := in.resolves
	delta := in.pendingDelta
	var res Result
	switch kern := in.retainedKernel(opts); {
	case kern != nil:
		res = in.runRetained(kern)
	case in.kernelRetainable(opts):
		// Rebuild the kernel from the mutated model and keep it for the
		// next RHS-only delta; warm start and cut pool already carry over.
		in.buildKernel(opts)
		res = in.runRetained(in.kern)
	default:
		if opts.Presolve {
			opts.preCache = &in.preCache
		}
		res = solvePrepared(in.m, opts)
		in.kern = nil
	}
	res.InstanceReused = reused
	res.RowsDelta = delta
	res.Runtime = time.Since(start)

	in.resolves++
	in.pendingDelta = 0
	in.dirty = false
	in.lastOptsKey = key
	in.lastRes = res
	if res.Solution != nil {
		in.lastSol = res.Solution.Clone()
	}
	in.hasLast = true
	return res
}

// kernelRetainable reports whether opts admit keeping a raw kernel
// between resolves: presolve and cuts rewrite the working model per
// solve, and the parallel search builds per-worker solvers, so only the
// plain serial shape retains.
func (in *Instance) kernelRetainable(opts Options) bool {
	return !opts.Presolve && !opts.Cuts && opts.Workers <= 1
}

// buildKernel constructs the retained kernel and the model-row →
// normalized-row index map from the current model.
func (in *Instance) buildKernel(opts Options) {
	in.kern = newSolver(in.m, opts)
	in.normIdx = make([]int, in.m.NumRows())
	ni := 0
	for i := 0; i < in.m.NumRows(); i++ {
		in.normIdx[i] = ni
		if in.m.RowAt(i).Sense == EQ {
			ni += 2
		} else {
			ni++
		}
	}
	in.rhsDirty = make(map[int]float64)
	in.structDirty = false
}

// retainedKernel returns the kernel to reuse for this resolve, or nil
// when the pending deltas (or the options) require a rebuild. Pending RHS
// edits are patched into the kernel's normalized rows and LP relaxation
// before it is returned.
func (in *Instance) retainedKernel(opts Options) *solver {
	if in.kern == nil || in.structDirty || !in.kernelRetainable(opts) {
		return nil
	}
	s := in.kern
	// The kernel's branching auto-switch must match what newSolver would
	// pick for these options.
	br := opts.Branching
	if br == BranchMaxObj && len(s.coverRows) > 0 {
		br = BranchCoverGreedy
	}
	for i, rhs := range in.rhsDirty {
		ni := in.normIdx[i]
		switch in.m.RowAt(i).Sense {
		case LE:
			s.rows[ni].rhs = rhs
			if s.lpBase != nil {
				s.lpBase.SetRHS(ni, rhs)
			}
		case GE:
			s.rows[ni].rhs = -rhs
			if s.lpBase != nil {
				s.lpBase.SetRHS(ni, -rhs)
			}
		case EQ:
			s.rows[ni].rhs = rhs
			s.rows[ni+1].rhs = -rhs
			if s.lpBase != nil {
				s.lpBase.SetRHS(ni, rhs)
				s.lpBase.SetRHS(ni+1, -rhs)
			}
		}
	}
	in.rhsDirty = make(map[int]float64)
	// Reset per-solve state; the trail is already unwound to the root
	// (run() undoes every assignment before returning).
	s.opts = opts
	s.ctx = opts.Context
	s.branching = br
	s.nodes, s.lpSolves, s.props, s.scansSaved, s.cutTight = 0, 0, 0, 0, 0
	s.hasIncumbent = false
	s.incumbentObj = 0
	s.timedOut, s.aborted = false, false
	s.deadline = time.Time{}
	s.budget, s.localCap = nil, 0
	s.shared = nil
	s.lpResOK = false
	s.resyncBoundTerms()
	return s
}

// runRetained runs one solve on the retained kernel, reporting per-solve
// LP warm hits (the solver's counter is cumulative across resolves).
func (in *Instance) runRetained(s *solver) Result {
	var warmBase int64
	if s.lpSolver != nil {
		warmBase = s.lpSolver.WarmHits
	}
	start := time.Now()
	res := s.run()
	res.LPWarmHits -= warmBase
	res.SearchTime = time.Since(start)
	return res
}
