package ilp

// This file is the classical-presolve layer of the kernel: a pass that
// runs once per Solve (Options.Presolve) and shrinks the model before
// branch and bound ever sees it. The EC flow re-solves almost the same
// ILP after every change, so constant factors removed here — fixed
// columns, dropped rows — are removed from every node of every re-solve.
//
// Four safe reductions run to fixpoint:
//
//   - row-slack bound tightening: a variable whose assignment would push a
//     row's activity bound past its right-hand side is fixed to the only
//     surviving value (the presolve-time form of the kernel's worklist
//     propagation);
//   - redundant-row elimination: a row no 0-1 point can violate is
//     dropped;
//   - duplicate-row elimination: rows with identical residual coefficient
//     vectors keep only the tightest right-hand side (equal-coefficient
//     equality rows with different right-hand sides prove infeasibility);
//   - dominated 0/1 column fixing: a column whose value v never hurts any
//     row (sense-aware sign test) and never hurts the objective is fixed
//     to v — at least one optimal solution survives the fixing.
//
// Every reduction maps back: postsolve rebuilds an original-space
// solution from a reduced-space one, and any reduced-feasible solution
// extended with the fixed values is feasible in the original model, so
// status and objective are preserved exactly (differential-tested against
// raw solves in presolve_test.go and the domain conformance suite).

const presolveEps = 1e-9

// presolved is the outcome of presolveModel: the reduced model plus the
// maps needed to translate solutions, warm starts, and cuts between the
// original and reduced variable spaces.
type presolved struct {
	reduced *Model
	// fixedVals is -1 for kept variables, else the fixed 0/1 value, per
	// original variable index.
	fixedVals []int8
	// toReduced maps original variable index to reduced index (-1 fixed).
	toReduced []int
	// toOrig maps reduced variable index to original index.
	toOrig []int

	infeasible   bool
	nFixed       int
	nRowsDropped int
	dirty        bool // a pass fixed a variable or dropped a row
}

// preRow is one row of the presolve working copy, compacted against the
// current fixings (fixed variables substituted into the right-hand side).
type preRow struct {
	coefs []Coef
	sense Sense
	rhs   float64
	name  string
	live  bool
}

// fix records x_j = v. It reports false when j is already fixed to the
// opposite value, which proves the model infeasible.
func (p *presolved) fix(j int, v int8) bool {
	switch p.fixedVals[j] {
	case -1:
		p.fixedVals[j] = v
		p.nFixed++
		p.dirty = true
		return true
	case v:
		return true
	default:
		p.infeasible = true
		return false
	}
}

// presolveModel runs the reduction fixpoint on m and returns the mapping.
// m is not modified. When infeasible is set the model has no 0-1 point;
// when the reduced model has zero variables, fixedVals is a complete
// assignment.
func presolveModel(m *Model) *presolved {
	n := m.NumVars()
	p := &presolved{fixedVals: make([]int8, n)}
	for j := range p.fixedVals {
		p.fixedVals[j] = -1
	}
	// Internal minimization objective: domination reasons about "never
	// hurts the objective" in one direction only.
	obj := make([]float64, n)
	for j := 0; j < n; j++ {
		c := m.obj[j]
		if m.Maximize {
			c = -c
		}
		obj[j] = c
	}
	rows := make([]preRow, len(m.rows))
	for i, r := range m.rows {
		rows[i] = preRow{
			coefs: append([]Coef(nil), r.Coefs...),
			sense: r.Sense,
			rhs:   r.RHS,
			name:  r.Name,
			live:  true,
		}
	}

	canFix0 := make([]bool, n)
	canFix1 := make([]bool, n)
	sigs := make(map[string]int, len(rows))
	var sigBuf []byte

	for {
		p.dirty = false
		// Pass 1: per-row compaction, redundancy, and slack forcing.
		for ri := range rows {
			r := &rows[ri]
			if !r.live {
				continue
			}
			if !p.reduceRow(r) {
				return p
			}
		}
		if p.infeasible {
			return p
		}
		// Pass 2: duplicate-row elimination on the compacted rows.
		clear(sigs)
		for ri := range rows {
			r := &rows[ri]
			if !r.live {
				continue
			}
			sigBuf = rowSignature(sigBuf[:0], r)
			prev, ok := sigs[string(sigBuf)]
			if !ok {
				sigs[string(sigBuf)] = ri
				continue
			}
			keep := &rows[prev]
			switch r.sense {
			case LE:
				if r.rhs < keep.rhs {
					keep.rhs = r.rhs
				}
			case GE:
				if r.rhs > keep.rhs {
					keep.rhs = r.rhs
				}
			case EQ:
				if diff := r.rhs - keep.rhs; diff > presolveEps || diff < -presolveEps {
					p.infeasible = true
					return p
				}
			}
			r.live = false
			p.nRowsDropped++
			p.dirty = true
		}
		// Pass 3: dominated 0/1 column fixing. x_j = v is dominant when v
		// never hurts any live row (sign test per sense) and never hurts
		// the minimization objective; at least one optimal solution then
		// has x_j = v.
		for j := 0; j < n; j++ {
			canFix0[j] = p.fixedVals[j] == -1 && obj[j] >= 0
			canFix1[j] = p.fixedVals[j] == -1 && obj[j] <= 0
		}
		for ri := range rows {
			r := &rows[ri]
			if !r.live {
				continue
			}
			ub := r.sense == LE || r.sense == EQ
			lb := r.sense == GE || r.sense == EQ
			for _, c := range r.coefs {
				if ub {
					if c.Val > 0 {
						canFix1[c.Var] = false
					} else if c.Val < 0 {
						canFix0[c.Var] = false
					}
				}
				if lb {
					if c.Val > 0 {
						canFix0[c.Var] = false
					} else if c.Val < 0 {
						canFix1[c.Var] = false
					}
				}
			}
		}
		for j := 0; j < n; j++ {
			if canFix0[j] {
				p.fix(j, 0)
			} else if canFix1[j] {
				p.fix(j, 1)
			}
		}
		if !p.dirty {
			break
		}
	}

	p.buildReduced(m, rows)
	return p
}

// reduceRow compacts r against the current fixings, merges duplicate
// coefficients, drops the row when redundant, and applies slack forcing.
// It reports false when the model is proven infeasible.
func (p *presolved) reduceRow(r *preRow) bool {
	// Substitute fixed variables into the right-hand side, then merge
	// per-variable coefficients (sorted order also canonicalizes the row
	// for duplicate elimination).
	out := r.coefs[:0]
	for _, c := range r.coefs {
		if v := p.fixedVals[c.Var]; v != -1 {
			if v == 1 {
				r.rhs -= c.Val
			}
			continue
		}
		out = append(out, c)
	}
	out = canonicalizeCoefs(out)
	r.coefs = out

	minAct, maxAct := 0.0, 0.0
	for _, c := range out {
		if c.Val < 0 {
			minAct += c.Val
		} else {
			maxAct += c.Val
		}
	}
	ub := r.sense == LE || r.sense == EQ
	lb := r.sense == GE || r.sense == EQ
	if ub && minAct > r.rhs+presolveEps {
		p.infeasible = true
		return false
	}
	if lb && maxAct < r.rhs-presolveEps {
		p.infeasible = true
		return false
	}
	redundant := true
	if ub && maxAct > r.rhs+presolveEps {
		redundant = false
	}
	if lb && minAct < r.rhs-presolveEps {
		redundant = false
	}
	if redundant {
		r.live = false
		p.nRowsDropped++
		p.dirty = true
		return true
	}
	// Slack forcing. Fixings made mid-scan leave minAct/maxAct stale in
	// the conservative direction (conditions only get harder to trigger),
	// so no forcing here is ever unsound; the next pass recomputes.
	for _, c := range out {
		if ub {
			if c.Val > 0 && minAct+c.Val > r.rhs+presolveEps {
				if !p.fix(c.Var, 0) {
					return false
				}
			} else if c.Val < 0 && minAct-c.Val > r.rhs+presolveEps {
				if !p.fix(c.Var, 1) {
					return false
				}
			}
		}
		if lb && p.fixedVals[c.Var] == -1 {
			if c.Val > 0 && maxAct-c.Val < r.rhs-presolveEps {
				if !p.fix(c.Var, 1) {
					return false
				}
			} else if c.Val < 0 && maxAct+c.Val < r.rhs-presolveEps {
				if !p.fix(c.Var, 0) {
					return false
				}
			}
		}
	}
	return true
}

// rowSignature appends a canonical byte encoding of the row's sense and
// coefficient vector (not the right-hand side) to buf. Rows compare equal
// exactly when their residual constraints differ only in rhs.
func rowSignature(buf []byte, r *preRow) []byte {
	buf = append(buf, byte(r.sense))
	for _, c := range r.coefs {
		buf = appendUvarint(buf, uint64(c.Var))
		buf = appendFloatBits(buf, c.Val)
	}
	return buf
}

// buildReduced emits the reduced model and the variable maps. The
// fixpoint loop exits only after a pass with no changes, so every live
// row is already compacted against the final fixings.
func (p *presolved) buildReduced(m *Model, rows []preRow) {
	n := m.NumVars()
	p.toReduced = make([]int, n)
	red := NewModel(m.Maximize)
	for j := 0; j < n; j++ {
		if p.fixedVals[j] != -1 {
			p.toReduced[j] = -1
			continue
		}
		p.toReduced[j] = len(p.toOrig)
		p.toOrig = append(p.toOrig, j)
		red.AddVar(m.names[j], m.obj[j])
	}
	for ri := range rows {
		r := &rows[ri]
		if !r.live {
			continue
		}
		coefs := make([]Coef, len(r.coefs))
		for i, c := range r.coefs {
			coefs[i] = Coef{p.toReduced[c.Var], c.Val}
		}
		red.AddRow(r.name, coefs, r.sense, r.rhs)
	}
	p.reduced = red
}

// postsolve maps a reduced-space solution back to the original variable
// space by filling in the presolve-fixed values.
func (p *presolved) postsolve(sol Solution) Solution {
	out := make(Solution, len(p.fixedVals))
	for j, v := range p.fixedVals {
		if v == -1 {
			out[j] = sol[p.toReduced[j]]
		} else {
			out[j] = v
		}
	}
	return out
}

// fixedSolution returns the complete assignment when presolve fixed every
// variable (the reduced model is empty).
func (p *presolved) fixedSolution() Solution {
	out := make(Solution, len(p.fixedVals))
	for j, v := range p.fixedVals {
		if v == 1 {
			out[j] = 1
		}
	}
	return out
}

// mapWarm projects an original-space warm start onto the reduced space.
// Values that disagree with presolve fixings are simply dropped with
// their variables: the projection only guides branching, and run()
// re-checks feasibility on the reduced model before adopting it.
func (p *presolved) mapWarm(ws Solution) Solution {
	if ws == nil || len(ws) != len(p.fixedVals) {
		return nil
	}
	out := make(Solution, len(p.toOrig))
	for rj, oj := range p.toOrig {
		out[rj] = ws[oj]
	}
	return out
}

// mapCut translates an original-space cut into the reduced space by
// substituting the fixed values. ok is false when the cut has no unfixed
// variables left (dropping a cut is always safe — cuts are redundant for
// the integer set).
func (p *presolved) mapCut(c Cut) (Cut, bool) {
	coefs := make([]Coef, 0, len(c.Coefs))
	rhs := c.RHS
	for _, cf := range c.Coefs {
		if v := p.fixedVals[cf.Var]; v != -1 {
			if v == 1 {
				rhs -= cf.Val
			}
			continue
		}
		coefs = append(coefs, Coef{p.toReduced[cf.Var], cf.Val})
	}
	if len(coefs) == 0 {
		return Cut{}, false
	}
	return Cut{Coefs: coefs, RHS: rhs}, true
}
