package ilp

import (
	"context"
	"encoding/binary"
	"io"
	"time"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal: the returned solution is proven optimal.
	Optimal Status = iota
	// Infeasible: the model has no feasible 0-1 point (proven).
	Infeasible
	// Feasible: a feasible solution was found but limits stopped the proof.
	Feasible
	// Unknown: limits stopped the search before any feasible solution.
	Unknown
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Infeasible:
		return "INFEASIBLE"
	case Feasible:
		return "FEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// Bounding selects the relaxation used to prune branch-and-bound nodes.
type Bounding int

const (
	// CombBound uses the O(n) combinatorial bound: objective of fixed
	// variables plus the best-case completion of unfixed ones, ignoring
	// constraints. Cheap; the default.
	CombBound Bounding = iota
	// LPBound solves the LP relaxation at each node via internal/lp.
	// Tighter but far more expensive per node.
	LPBound
)

// Branching selects the variable-choice rule.
type Branching int

const (
	// BranchMaxObj picks the unfixed variable with the largest absolute
	// objective coefficient (ties to the lowest index). The default.
	BranchMaxObj Branching = iota
	// BranchMostConstrained picks the unfixed variable occurring in the
	// most rows.
	BranchMostConstrained
	// BranchLPFractional picks the variable whose LP-relaxation value is
	// closest to ½ (requires LPBound; falls back to BranchMaxObj).
	BranchLPFractional
	// BranchCoverGreedy picks the unfixed variable covering the most
	// still-uncovered Σx ≥ 1 rows, diving on value 1 first — the greedy
	// set-cover order. Selected automatically instead of BranchMaxObj when
	// the model contains covering rows.
	BranchCoverGreedy
)

// Options configures Solve. The zero value gives an exact solve with
// combinatorial bounding and max-objective branching.
type Options struct {
	Bounding  Bounding
	Branching Branching
	// WarmStart, if non-nil and feasible, becomes the initial incumbent,
	// and branching tries each variable's warm value first. This is the
	// mechanism by which EC re-solves exploit the original solution.
	WarmStart Solution
	// MaxNodes bounds the total number of branch-and-bound nodes across
	// the whole search (0 = unlimited). The budget is global: with
	// Workers > 1 all searchers draw from one shared counter, so raising
	// Workers never multiplies the node budget.
	MaxNodes int64
	// TimeLimit bounds wall-clock time (0 = unlimited).
	TimeLimit time.Duration
	// Workers > 1 splits the root into subproblems by fixing the first k
	// branching variables and searches them on parallel goroutines sharing
	// an incumbent bound. The optimum is unchanged; the reported Solution
	// may be any optimal one. 0 or 1 selects the serial search.
	Workers int
	// Presolve runs the reduction fixpoint of presolve.go before the
	// search: slack forcing, redundant/duplicate row elimination, and
	// dominated column fixing, with solutions mapped back through the
	// postsolve maps. Status and objective are preserved exactly.
	Presolve bool
	// Cuts separates lifted cover cuts and clique cuts (cuts.go) and adds
	// them as extra rows, tightening propagation and the LP relaxation.
	// Implied inequalities only: status and objective are unchanged.
	Cuts bool
	// CutPool, when non-nil with Cuts set, retains separated cuts across
	// solves keyed by source-row content, so EC re-solves only pay
	// separation for changed rows. Nil uses a transient per-solve pool.
	CutPool *CutPool
	// Context, when non-nil, aborts the search when cancelled (checked on
	// the same stride as TimeLimit). An aborted solve reports Feasible or
	// Unknown, exactly like a time limit.
	Context context.Context

	// cutRows is set internally by Solve: the number of trailing rows of
	// the model handed to the kernel that are cut rows (for the
	// CutTightenings counter).
	cutRows int
	// preCache, set internally by Instance.Resolve, retains the presolve
	// reduction of an unchanged model across solves: when it already holds
	// a reduction, solvePrepared reuses it instead of recomputing the
	// fixpoint, and when empty it is filled with the reduction computed
	// this solve. The Instance invalidates it on every model edit.
	preCache *presolveCache
}

// presolveCache is the Instance-retained presolve state (see
// Options.preCache).
type presolveCache struct {
	pre *presolved
}

// Fingerprint writes a canonical binary digest of the answer-relevant
// options to w. Excluded: WarmStart (guides the search but is keyed
// separately by callers that cache solves — the EC session service hashes
// the previous solution alongside), Presolve/Cuts/CutPool (proven to
// preserve status and objective, so reduced and raw solves are
// answer-equivalent), and Context (truncates like TimeLimit, and
// truncated results are never cache-eligible — see the service's
// proven-only caching rule). Two Options values with equal fingerprints
// configure searches that return the same status and objective for the
// same model, provided the search ran to completion.
func (o Options) Fingerprint(w io.Writer) {
	var buf [5 * binary.MaxVarintLen64]byte
	b := buf[:0]
	b = binary.AppendVarint(b, int64(o.Bounding))
	b = binary.AppendVarint(b, int64(o.Branching))
	b = binary.AppendVarint(b, o.MaxNodes)
	b = binary.AppendVarint(b, int64(o.TimeLimit))
	b = binary.AppendVarint(b, int64(o.Workers))
	w.Write(b)
}

// Result is the outcome of Solve.
type Result struct {
	Status       Status
	Objective    float64
	Solution     Solution
	Nodes        int64
	LPSolves     int64
	Propagations int64
	// RowScansSaved counts worklist row visits skipped by the watched-slack
	// early exit — full-row scans the non-indexed engine would have done.
	RowScansSaved int64
	// LPWarmHits counts LP node solves that reused the previous basis.
	LPWarmHits int64
	// PresolveFixed counts variables fixed by the presolve pass.
	PresolveFixed int64
	// PresolveRows counts rows dropped by presolve (redundant +
	// duplicate).
	PresolveRows int64
	// CutsAdded is the number of cut rows added to this solve (separated
	// fresh plus served from the pool).
	CutsAdded int64
	// CutsReused is the subset of CutsAdded served from a retained
	// CutPool without re-separation.
	CutsReused int64
	// CutTightenings counts variable fixings forced by cut rows during
	// propagation — prunings the raw row set would not have made.
	CutTightenings int64
	// InstanceReused counts how many prior Resolve calls' retained state
	// (column index, trail arena, LP basis, cut pool) this solve built on.
	// Zero for scratch solves and for the first solve of an Instance (or
	// the first after a structural rebuild).
	InstanceReused int64
	// RowsDelta is the number of row edits (adds + removes + RHS changes +
	// pin changes) applied to the Instance since its previous Resolve.
	// Zero for scratch solves.
	RowsDelta int64
	// ReseparatedRows counts source rows that paid full cut separation this
	// solve because the retained pool had no entry for their content — on
	// an EC re-solve, the rows the change touched. Zero when Cuts is off.
	ReseparatedRows int64
	// Workers is the number of parallel searchers used (1 = serial).
	Workers int
	Runtime time.Duration
	// Phase wall-clock breakdown of Runtime, for the observability
	// layer: time spent in the presolve pass (zero when cached or off),
	// in cut separation, and in the branch-and-bound kernel itself.
	PresolveTime time.Duration
	CutSepTime   time.Duration
	SearchTime   time.Duration
}

// Solve runs exact branch and bound on the model, after the optional
// presolve and cut-separation layers.
func Solve(m *Model, opts Options) Result {
	start := time.Now()
	res := solvePrepared(m, opts)
	res.Runtime = time.Since(start)
	return res
}

// solveCore dispatches the prepared model to the serial or parallel
// kernel.
func solveCore(m *Model, opts Options) Result {
	start := time.Now()
	var res Result
	if opts.Workers > 1 {
		res = solveParallel(m, opts)
	} else {
		res = newSolver(m, opts).run()
	}
	res.SearchTime = time.Since(start)
	return res
}

// solvePrepared runs presolve and cut separation, solves the reduced
// model, and maps the answer back to the original variable space.
func solvePrepared(m *Model, opts Options) Result {
	if !opts.Presolve && !opts.Cuts {
		return solveCore(m, opts)
	}

	var pre *presolved
	var preTime time.Duration
	if opts.Presolve {
		if opts.preCache != nil && opts.preCache.pre != nil {
			pre = opts.preCache.pre
		} else {
			preStart := time.Now()
			pre = presolveModel(m)
			preTime = time.Since(preStart)
			if opts.preCache != nil {
				opts.preCache.pre = pre
			}
		}
		if pre.infeasible {
			return Result{
				Status:        Infeasible,
				PresolveFixed: int64(pre.nFixed),
				PresolveRows:  int64(pre.nRowsDropped),
				Workers:       1,
				PresolveTime:  preTime,
			}
		}
	}

	// Cuts are separated in the ORIGINAL variable/row space so the pool's
	// row-content keys stay stable across EC re-solves, then translated
	// through the presolve fixings.
	var cuts []Cut
	var added, reused, freshRows int
	var cutTime time.Duration
	if opts.Cuts {
		pool := opts.CutPool
		if pool == nil {
			pool = NewCutPool()
		}
		cutStart := time.Now()
		cuts, added, reused, freshRows = pool.separate(m)
		cutTime = time.Since(cutStart)
	}

	work := m
	if pre != nil {
		work = pre.reduced
		opts.WarmStart = pre.mapWarm(opts.WarmStart)
		if len(cuts) > 0 {
			mapped := cuts[:0]
			for _, c := range cuts {
				if mc, ok := pre.mapCut(c); ok {
					mapped = append(mapped, mc)
				}
			}
			cuts = mapped
		}
		if work.NumVars() == 0 {
			// Presolve decided everything. The reduced model being
			// conflict-free makes the fixed assignment feasible by
			// construction; Feasible() is a cheap belt-and-braces check.
			sol := pre.fixedSolution()
			if m.Feasible(sol) {
				return Result{
					Status:        Optimal,
					Objective:     m.Objective(sol),
					Solution:      sol,
					PresolveFixed: int64(pre.nFixed),
					PresolveRows:  int64(pre.nRowsDropped),
					Workers:       1,
					PresolveTime:  preTime,
					CutSepTime:    cutTime,
				}
			}
			// Should be unreachable; solve the raw model rather than risk
			// a wrong answer.
			raw := opts
			raw.Presolve, raw.Cuts = false, false
			res := solveCore(m, raw)
			res.PresolveTime, res.CutSepTime = preTime, cutTime
			return res
		}
	}
	if len(cuts) > 0 {
		work = withCutRows(work, cuts)
		opts.cutRows = len(cuts)
	}

	res := solveCore(work, opts)
	res.CutsAdded, res.CutsReused = int64(added), int64(reused)
	res.ReseparatedRows = int64(freshRows)
	res.PresolveTime, res.CutSepTime = preTime, cutTime
	if pre != nil {
		res.PresolveFixed = int64(pre.nFixed)
		res.PresolveRows = int64(pre.nRowsDropped)
		if res.Solution != nil {
			res.Solution = pre.postsolve(res.Solution)
			res.Objective = m.Objective(res.Solution)
		}
	}
	return res
}

// withCutRows returns a model sharing m's variables and rows with the cut
// rows appended (m itself is not modified).
func withCutRows(m *Model, cuts []Cut) *Model {
	out := &Model{Maximize: m.Maximize, names: m.names, obj: m.obj}
	out.rows = make([]Row, 0, len(m.rows)+len(cuts))
	out.rows = append(out.rows, m.rows...)
	for _, c := range cuts {
		out.rows = append(out.rows, Row{Name: "cut", Coefs: c.Coefs, Sense: LE, RHS: c.RHS})
	}
	return out
}
