package ilp

import (
	"encoding/binary"
	"io"
	"time"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal: the returned solution is proven optimal.
	Optimal Status = iota
	// Infeasible: the model has no feasible 0-1 point (proven).
	Infeasible
	// Feasible: a feasible solution was found but limits stopped the proof.
	Feasible
	// Unknown: limits stopped the search before any feasible solution.
	Unknown
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Infeasible:
		return "INFEASIBLE"
	case Feasible:
		return "FEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// Bounding selects the relaxation used to prune branch-and-bound nodes.
type Bounding int

const (
	// CombBound uses the O(n) combinatorial bound: objective of fixed
	// variables plus the best-case completion of unfixed ones, ignoring
	// constraints. Cheap; the default.
	CombBound Bounding = iota
	// LPBound solves the LP relaxation at each node via internal/lp.
	// Tighter but far more expensive per node.
	LPBound
)

// Branching selects the variable-choice rule.
type Branching int

const (
	// BranchMaxObj picks the unfixed variable with the largest absolute
	// objective coefficient (ties to the lowest index). The default.
	BranchMaxObj Branching = iota
	// BranchMostConstrained picks the unfixed variable occurring in the
	// most rows.
	BranchMostConstrained
	// BranchLPFractional picks the variable whose LP-relaxation value is
	// closest to ½ (requires LPBound; falls back to BranchMaxObj).
	BranchLPFractional
	// BranchCoverGreedy picks the unfixed variable covering the most
	// still-uncovered Σx ≥ 1 rows, diving on value 1 first — the greedy
	// set-cover order. Selected automatically instead of BranchMaxObj when
	// the model contains covering rows.
	BranchCoverGreedy
)

// Options configures Solve. The zero value gives an exact solve with
// combinatorial bounding and max-objective branching.
type Options struct {
	Bounding  Bounding
	Branching Branching
	// WarmStart, if non-nil and feasible, becomes the initial incumbent,
	// and branching tries each variable's warm value first. This is the
	// mechanism by which EC re-solves exploit the original solution.
	WarmStart Solution
	// MaxNodes bounds the number of branch-and-bound nodes (0 = unlimited).
	// With Workers > 1 the budget applies per worker.
	MaxNodes int64
	// TimeLimit bounds wall-clock time (0 = unlimited).
	TimeLimit time.Duration
	// Workers > 1 splits the root into subproblems by fixing the first k
	// branching variables and searches them on parallel goroutines sharing
	// an incumbent bound. The optimum is unchanged; the reported Solution
	// may be any optimal one. 0 or 1 selects the serial search.
	Workers int
}

// Fingerprint writes a canonical binary digest of the answer-relevant
// options to w — everything except WarmStart, which guides the search but
// is keyed separately by callers that cache solves (the EC session service
// hashes the previous solution alongside). Two Options values with equal
// fingerprints configure searches that return the same status and
// objective for the same model.
func (o Options) Fingerprint(w io.Writer) {
	var buf [5 * binary.MaxVarintLen64]byte
	b := buf[:0]
	b = binary.AppendVarint(b, int64(o.Bounding))
	b = binary.AppendVarint(b, int64(o.Branching))
	b = binary.AppendVarint(b, o.MaxNodes)
	b = binary.AppendVarint(b, int64(o.TimeLimit))
	b = binary.AppendVarint(b, int64(o.Workers))
	w.Write(b)
}

// Result is the outcome of Solve.
type Result struct {
	Status       Status
	Objective    float64
	Solution     Solution
	Nodes        int64
	LPSolves     int64
	Propagations int64
	// RowScansSaved counts worklist row visits skipped by the watched-slack
	// early exit — full-row scans the non-indexed engine would have done.
	RowScansSaved int64
	// LPWarmHits counts LP node solves that reused the previous basis.
	LPWarmHits int64
	// Workers is the number of parallel searchers used (1 = serial).
	Workers int
	Runtime time.Duration
}

// Solve runs exact branch and bound on the model.
func Solve(m *Model, opts Options) Result {
	start := time.Now()
	var res Result
	if opts.Workers > 1 {
		res = solveParallel(m, opts)
	} else {
		res = newSolver(m, opts).run()
	}
	res.Runtime = time.Since(start)
	return res
}
