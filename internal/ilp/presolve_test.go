package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// TestPresolveForcedFixings: rows whose slack admits only one value fix
// variables at presolve time.
func TestPresolveForcedFixings(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 1)
	z := m.AddVar("z", -1)
	m.AddRow("", []Coef{{x, 1}}, GE, 1)          // forces x = 1
	m.AddRow("", []Coef{{y, 2}, {x, 1}}, LE, 2)  // with x = 1: forces y = 0
	m.AddRow("", []Coef{{z, -3}, {y, 1}}, LE, 0) // z = 0 violates? no: forces nothing new; z dominated to 1
	p := presolveModel(m)
	if p.infeasible {
		t.Fatal("unexpected infeasible")
	}
	if p.fixedVals[x] != 1 || p.fixedVals[y] != 0 {
		t.Fatalf("fixedVals = %v, want x=1 y=0", p.fixedVals)
	}
	if p.reduced.NumVars() != 0 {
		// z has negative objective and only helpful coefficients: fixed 1.
		t.Fatalf("reduced vars = %d, want 0 (z dominated)", p.reduced.NumVars())
	}
	res := Solve(m, Options{Presolve: true})
	if res.Status != Optimal || res.PresolveFixed != 3 {
		t.Fatalf("res = %+v, want Optimal with 3 fixed", res)
	}
	want := Enumerate(m)
	if math.Abs(res.Objective-want.Objective) > 1e-9 {
		t.Fatalf("objective %v, want %v", res.Objective, want.Objective)
	}
}

// TestPresolveInfeasible: contradictory rows are detected without search.
func TestPresolveInfeasible(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 1)
	m.AddRow("", []Coef{{x, 1}}, GE, 1)
	m.AddRow("", []Coef{{x, 1}}, LE, 0)
	res := Solve(m, Options{Presolve: true})
	if res.Status != Infeasible {
		t.Fatalf("status %v, want Infeasible", res.Status)
	}
	if res.Nodes != 0 {
		t.Fatalf("nodes %d, want 0 (presolve should prove it)", res.Nodes)
	}
}

// TestPresolveDuplicateRows: identical residual rows collapse to the
// tightest right-hand side, and equal-coef EQ rows with different rhs are
// infeasible.
func TestPresolveDuplicateRows(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", -1)
	y := m.AddVar("y", -1)
	z := m.AddVar("z", -1)
	m.AddRow("", []Coef{{x, 1}, {y, 1}, {z, 1}}, LE, 2)
	m.AddRow("", []Coef{{z, 1}, {x, 1}, {y, 1}}, LE, 1) // same coefs, tighter
	m.AddRow("", []Coef{{x, 1}, {y, 1}, {z, 1}}, LE, 2) // duplicate again
	p := presolveModel(m)
	if p.infeasible {
		t.Fatal("unexpected infeasible")
	}
	if p.nRowsDropped < 2 {
		t.Fatalf("dropped %d rows, want >= 2", p.nRowsDropped)
	}
	diffPresolve(t, 0, m)

	m2 := NewModel(false)
	a := m2.AddVar("a", 1)
	b := m2.AddVar("b", 1)
	m2.AddRow("", []Coef{{a, 1}, {b, 1}}, EQ, 1)
	m2.AddRow("", []Coef{{a, 1}, {b, 1}}, EQ, 2)
	if res := Solve(m2, Options{Presolve: true}); res.Status != Infeasible {
		t.Fatalf("conflicting EQ duplicates: status %v, want Infeasible", res.Status)
	}
}

// TestPresolveDominatedColumns: a column whose value never hurts any row
// or the objective is fixed.
func TestPresolveDominatedColumns(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 2) // only positive coefs in LE rows, positive cost → 0
	y := m.AddVar("y", 1)
	z := m.AddVar("z", 1)
	m.AddRow("", []Coef{{x, 1}, {y, 1}, {z, 1}}, LE, 2)
	m.AddRow("", []Coef{{y, 1}, {z, 1}}, GE, 1)
	p := presolveModel(m)
	if p.fixedVals[x] != 0 {
		t.Fatalf("x not fixed to 0: %v", p.fixedVals)
	}
	diffPresolve(t, 0, m)
}

// diffPresolve asserts Presolve+Cuts solves m to the same status and
// objective as the raw kernel, and that the mapped-back solution is
// feasible in the original model.
func diffPresolve(t *testing.T, trial int, m *Model) {
	t.Helper()
	want := Solve(m, Options{})
	for _, opts := range []Options{
		{Presolve: true},
		{Cuts: true},
		{Presolve: true, Cuts: true},
		{Presolve: true, Cuts: true, Bounding: LPBound, Branching: BranchLPFractional},
	} {
		got := Solve(m, opts)
		if got.Status != want.Status {
			t.Fatalf("trial %d %+v: status %v, want %v\nmodel: %v", trial, opts, got.Status, want.Status, m)
		}
		if want.Status == Optimal {
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d %+v: objective %v, want %v\nmodel: %v", trial, opts, got.Objective, want.Objective, m)
			}
			if len(got.Solution) != m.NumVars() {
				t.Fatalf("trial %d: solution length %d, want %d", trial, len(got.Solution), m.NumVars())
			}
			if !m.Feasible(got.Solution) {
				t.Fatalf("trial %d %+v: postsolved solution infeasible\nmodel: %v", trial, opts, m)
			}
		}
	}
}

// TestPresolveDifferentialRandom is the property-style round-trip test:
// across seeded random models with general senses and mixed-sign
// coefficients, the reduced model's mapped-back solution must be feasible
// and objective-equal in the original.
func TestPresolveDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 150; trial++ {
		m := randomModel(rng, 2+rng.Intn(10), 1+rng.Intn(8))
		diffPresolve(t, trial, m)
	}
}

// TestPresolveDifferentialCover focuses on covering structure: presolve
// must keep GE cover rows recognizable (the cover bound and greedy
// branching depend on them).
func TestPresolveDifferentialCover(t *testing.T) {
	rng := rand.New(rand.NewSource(422))
	for trial := 0; trial < 80; trial++ {
		nSets := 3 + rng.Intn(9)
		nElems := 2 + rng.Intn(10)
		m := NewModel(false)
		for j := 0; j < nSets; j++ {
			m.AddVar("", float64(rng.Intn(6)-1))
		}
		for e := 0; e < nElems; e++ {
			var coefs []Coef
			for j := 0; j < nSets; j++ {
				if rng.Intn(3) == 0 {
					coefs = append(coefs, Coef{j, 1})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{rng.Intn(nSets), 1})
			}
			m.AddRow("", coefs, GE, 1)
		}
		diffPresolve(t, trial, m)
	}
}

// TestPresolveDifferentialKnapsack focuses on the all-positive LE rows
// that drive cover-cut and conflict-edge separation.
func TestPresolveDifferentialKnapsack(t *testing.T) {
	rng := rand.New(rand.NewSource(423))
	for trial := 0; trial < 80; trial++ {
		nVars := 3 + rng.Intn(8)
		m := NewModel(rng.Intn(2) == 0)
		for j := 0; j < nVars; j++ {
			m.AddVar("", float64(rng.Intn(9)-3))
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			var coefs []Coef
			for j := 0; j < nVars; j++ {
				if rng.Intn(2) == 0 {
					coefs = append(coefs, Coef{j, float64(1 + rng.Intn(6))})
				}
			}
			if len(coefs) == 0 {
				coefs = append(coefs, Coef{rng.Intn(nVars), 2})
			}
			m.AddRow("", coefs, LE, float64(1+rng.Intn(9)))
		}
		// A couple of GE rows keep the instances feasible-but-nontrivial.
		for i := 0; i < 1+rng.Intn(2); i++ {
			var coefs []Coef
			for j := 0; j < nVars; j++ {
				if rng.Intn(3) == 0 {
					coefs = append(coefs, Coef{j, 1})
				}
			}
			if len(coefs) == 0 {
				continue
			}
			m.AddRow("", coefs, GE, 1)
		}
		diffPresolve(t, trial, m)
	}
}

// TestPresolveWarmStart: warm starts survive the reduction (mapped into
// the reduced space) and still steer the solver.
func TestPresolveWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	for trial := 0; trial < 40; trial++ {
		m := randomModel(rng, 3+rng.Intn(8), 1+rng.Intn(6))
		base := Solve(m, Options{})
		if base.Status != Optimal {
			continue
		}
		got := Solve(m, Options{Presolve: true, Cuts: true, WarmStart: base.Solution})
		if got.Status != Optimal || math.Abs(got.Objective-base.Objective) > 1e-6 {
			t.Fatalf("trial %d: warm-started presolve got %v/%v, want Optimal/%v",
				trial, got.Status, got.Objective, base.Objective)
		}
	}
}

// TestPresolveParallelDifferential: presolve+cuts compose with the
// parallel root search.
func TestPresolveParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(425))
	for trial := 0; trial < 30; trial++ {
		m := randomModel(rng, 4+rng.Intn(9), 2+rng.Intn(7))
		want := Solve(m, Options{})
		got := Solve(m, Options{Presolve: true, Cuts: true, Workers: 4})
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v, want %v", trial, got.Status, want.Status)
		}
		if want.Status == Optimal {
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d: objective %v, want %v", trial, got.Objective, want.Objective)
			}
			if !m.Feasible(got.Solution) {
				t.Fatalf("trial %d: infeasible solution", trial)
			}
		}
	}
}
