package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// knapsack builds max Σ v_j x_j s.t. Σ w_j x_j ≤ cap.
func knapsack(values, weights []float64, cap float64) *Model {
	m := NewModel(true)
	coefs := make([]Coef, len(values))
	for j := range values {
		m.AddVar("", values[j])
		coefs[j] = Coef{j, weights[j]}
	}
	m.AddRow("cap", coefs, LE, cap)
	return m
}

func TestKnapsackOptimal(t *testing.T) {
	m := knapsack([]float64{6, 5, 4}, []float64{3, 2, 2}, 4)
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Best is items 2+3: value 9, weight 4.
	if res.Objective != 9 {
		t.Fatalf("objective = %v, want 9", res.Objective)
	}
	if !m.Feasible(res.Solution) {
		t.Fatal("infeasible optimum")
	}
}

func TestInfeasibleModel(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 1)
	m.AddRow("", []Coef{{x, 1}}, GE, 1)
	m.AddRow("", []Coef{{x, 1}}, LE, 0)
	if res := Solve(m, Options{}); res.Status != Infeasible {
		t.Fatalf("status = %v, want INFEASIBLE", res.Status)
	}
}

func TestEqualityRows(t *testing.T) {
	// min x+y+z s.t. x+y+z = 2 → objective 2.
	m := NewModel(false)
	var coefs []Coef
	for j := 0; j < 3; j++ {
		m.AddVar("", 1)
		coefs = append(coefs, Coef{j, 1})
	}
	m.AddRow("", coefs, EQ, 2)
	res := Solve(m, Options{})
	if res.Status != Optimal || res.Objective != 2 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	sum := int8(0)
	for _, v := range res.Solution {
		sum += v
	}
	if sum != 2 {
		t.Fatalf("solution sum = %d", sum)
	}
}

func TestEmptyModel(t *testing.T) {
	m := NewModel(false)
	res := Solve(m, Options{})
	if res.Status != Optimal || res.Objective != 0 || len(res.Solution) != 0 {
		t.Fatalf("empty model: %+v", res)
	}
}

func TestNoRowsPicksObjectiveBounds(t *testing.T) {
	m := NewModel(true)
	m.AddVar("a", 5)
	m.AddVar("b", -3)
	res := Solve(m, Options{})
	if res.Status != Optimal || res.Objective != 5 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if res.Solution[0] != 1 || res.Solution[1] != 0 {
		t.Fatalf("solution = %v", res.Solution)
	}
}

func randomModel(rng *rand.Rand, nVars, nRows int) *Model {
	m := NewModel(rng.Intn(2) == 0)
	for j := 0; j < nVars; j++ {
		m.AddVar("", float64(rng.Intn(21)-10))
	}
	for i := 0; i < nRows; i++ {
		var coefs []Coef
		for j := 0; j < nVars; j++ {
			if rng.Intn(3) == 0 {
				coefs = append(coefs, Coef{j, float64(rng.Intn(9) - 4)})
			}
		}
		if len(coefs) == 0 {
			coefs = append(coefs, Coef{rng.Intn(nVars), 1})
		}
		sense := Sense(rng.Intn(3))
		rhs := float64(rng.Intn(7) - 2)
		m.AddRow("", coefs, sense, rhs)
	}
	return m
}

// TestSolveAgainstEnumerate is the core oracle test: branch and bound must
// agree with exhaustive enumeration on status and objective value.
func TestSolveAgainstEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for trial := 0; trial < 250; trial++ {
		m := randomModel(rng, 2+rng.Intn(8), 1+rng.Intn(6))
		want := Enumerate(m)
		got := Solve(m, Options{})
		if got.Status != want.Status {
			t.Fatalf("trial %d: got %v want %v\nmodel: %v", trial, got.Status, want.Status, m)
		}
		if want.Status == Optimal {
			if math.Abs(got.Objective-want.Objective) > 1e-9 {
				t.Fatalf("trial %d: got obj %v want %v", trial, got.Objective, want.Objective)
			}
			if !m.Feasible(got.Solution) {
				t.Fatalf("trial %d: infeasible claimed optimum", trial)
			}
		}
	}
}

// TestBoundingModesAgree: LP-relaxation bounding must not change results.
func TestBoundingModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		a := Solve(m, Options{Bounding: CombBound})
		b := Solve(m, Options{Bounding: LPBound})
		if a.Status != b.Status {
			t.Fatalf("trial %d: comb=%v lp=%v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Fatalf("trial %d: comb obj=%v lp obj=%v", trial, a.Objective, b.Objective)
		}
		if b.Status == Optimal && b.LPSolves == 0 {
			t.Fatalf("trial %d: LPBound did not call the LP solver", trial)
		}
	}
}

// TestBranchingModesAgree: all branching rules find the same optimum.
func TestBranchingModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rules := []Branching{BranchMaxObj, BranchMostConstrained, BranchLPFractional}
	for trial := 0; trial < 40; trial++ {
		m := randomModel(rng, 2+rng.Intn(6), 1+rng.Intn(4))
		want := Enumerate(m)
		for _, rule := range rules {
			opts := Options{Branching: rule}
			if rule == BranchLPFractional {
				opts.Bounding = LPBound
			}
			got := Solve(m, opts)
			if got.Status != want.Status {
				t.Fatalf("trial %d rule %d: got %v want %v", trial, rule, got.Status, want.Status)
			}
			if want.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d rule %d: obj %v want %v", trial, rule, got.Objective, want.Objective)
			}
		}
	}
}

func TestWarmStartAdoptedAsIncumbent(t *testing.T) {
	m := knapsack([]float64{6, 5, 4}, []float64{3, 2, 2}, 4)
	ws := Solution{0, 1, 1} // the optimum
	res := Solve(m, Options{WarmStart: ws})
	if res.Status != Optimal || res.Objective != 9 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	// An infeasible warm start must be ignored, not break the solve.
	bad := Solution{1, 1, 1}
	res2 := Solve(m, Options{WarmStart: bad})
	if res2.Status != Optimal || res2.Objective != 9 {
		t.Fatalf("bad warm start broke solve: %v %v", res2.Status, res2.Objective)
	}
}

func TestWarmStartSpeedsSearch(t *testing.T) {
	// On a model whose optimum is the warm start, node count with warm
	// start must not exceed node count without.
	rng := rand.New(rand.NewSource(5))
	slow, fast := int64(0), int64(0)
	for trial := 0; trial < 20; trial++ {
		m := randomModel(rng, 10, 6)
		base := Solve(m, Options{})
		if base.Status != Optimal {
			continue
		}
		warm := Solve(m, Options{WarmStart: base.Solution})
		slow += base.Nodes
		fast += warm.Nodes
	}
	if fast > slow {
		t.Fatalf("warm start explored more nodes overall: %d > %d", fast, slow)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomModel(rng, 18, 10)
	res := Solve(m, Options{MaxNodes: 1})
	if res.Status == Optimal || res.Status == Infeasible {
		// With 1 node the solver may still finish trivial models; verify
		// correctness in that case.
		want := Enumerate(m)
		if res.Status != want.Status {
			t.Fatalf("1-node claimed %v, oracle %v", res.Status, want.Status)
		}
		return
	}
	if res.Status != Feasible && res.Status != Unknown {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	// A large hard model; the 1ns budget must stop the search quickly.
	m := randomModel(rng, 40, 30)
	start := time.Now()
	res := Solve(m, Options{TimeLimit: time.Nanosecond})
	if time.Since(start) > 5*time.Second {
		t.Fatal("time limit not respected")
	}
	_ = res
}

func TestPropagationForcesVariables(t *testing.T) {
	// x + y ≤ 1 with x ≥ 1 forces y = 0 without branching on y.
	m := NewModel(true)
	x := m.AddVar("x", 1)
	y := m.AddVar("y", 1)
	m.AddRow("", []Coef{{x, 1}}, GE, 1)
	m.AddRow("", []Coef{{x, 1}, {y, 1}}, LE, 1)
	res := Solve(m, Options{})
	if res.Status != Optimal || res.Objective != 1 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Objective)
	}
	if res.Solution[x] != 1 || res.Solution[y] != 0 {
		t.Fatalf("solution = %v", res.Solution)
	}
	if res.Propagations == 0 {
		t.Fatal("expected propagation events")
	}
}

func TestNegativeCoefficientPropagation(t *testing.T) {
	// -x ≤ -1 forces x = 1.
	m := NewModel(false)
	x := m.AddVar("x", 5)
	m.AddRow("", []Coef{{x, -1}}, LE, -1)
	res := Solve(m, Options{})
	if res.Status != Optimal || res.Solution[x] != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	m := NewModel(false)
	m.AddVars(MaxEnumerateVars + 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Enumerate(m)
}

func TestCountFeasible(t *testing.T) {
	m := NewModel(false)
	x := m.AddVar("x", 0)
	y := m.AddVar("y", 0)
	m.AddRow("", []Coef{{x, 1}, {y, 1}}, LE, 1)
	if n := CountFeasible(m); n != 3 {
		t.Fatalf("CountFeasible = %d, want 3", n)
	}
}

// Set-cover instance from the paper's §3 example: three clauses, variables
// x1..x6 (x4..x6 complements), minimize selected literals.
func paperSetCover() *Model {
	m := NewModel(false)
	for j := 0; j < 6; j++ {
		m.AddVar("", 1)
	}
	// S1 = (x4, x2), S2 = (x2, x3), S3 = (x1, x6) — cover rows.
	m.AddRow("S1", []Coef{{3, 1}, {1, 1}}, GE, 1)
	m.AddRow("S2", []Coef{{1, 1}, {2, 1}}, GE, 1)
	m.AddRow("S3", []Coef{{0, 1}, {5, 1}}, GE, 1)
	// Consistency: x_i + x_{i+3} ≤ 1.
	for v := 0; v < 3; v++ {
		m.AddRow("", []Coef{{v, 1}, {v + 3, 1}}, LE, 1)
	}
	return m
}

func TestPaperSetCoverExample(t *testing.T) {
	m := paperSetCover()
	res := Solve(m, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Two selections suffice (e.g. x2 covers S1+S2, x1 or x6 covers S3).
	if res.Objective != 2 {
		t.Fatalf("objective = %v, want 2", res.Objective)
	}
	want := Enumerate(m)
	if math.Abs(want.Objective-res.Objective) > 1e-9 {
		t.Fatalf("oracle disagrees: %v", want.Objective)
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	m := paperSetCover()
	res := Solve(m, Options{})
	if res.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
	if res.Nodes < 0 {
		t.Fatal("negative node count")
	}
}
