package ilp

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestCoverCutSeparation: a knapsack row yields a lifted minimal-cover
// cut that is valid for every feasible 0-1 point.
func TestCoverCutSeparation(t *testing.T) {
	m := NewModel(true)
	w := []float64{5, 4, 3, 2}
	for j, wj := range w {
		m.AddVar("", float64(j+1))
		_ = wj
	}
	m.AddRow("", []Coef{{0, 5}, {1, 4}, {2, 3}, {3, 2}}, LE, 8)
	pool := NewCutPool()
	cuts, added, reused, _ := pool.separate(m)
	if len(cuts) == 0 || added != len(cuts) || reused != 0 {
		t.Fatalf("cuts=%d added=%d reused=%d, want fresh cuts", len(cuts), added, reused)
	}
	// Every cut must hold at every feasible point of the model.
	for mask := 0; mask < 1<<4; mask++ {
		sol := make(Solution, 4)
		act := 0.0
		for j := 0; j < 4; j++ {
			if mask>>j&1 == 1 {
				sol[j] = 1
				act += w[j]
			}
		}
		if act > 8 {
			continue
		}
		for _, c := range cuts {
			sum := 0.0
			for _, cf := range c.Coefs {
				if sol[cf.Var] == 1 {
					sum += cf.Val
				}
			}
			if sum > c.RHS+1e-9 {
				t.Fatalf("cut %+v violated by feasible point %v", c, sol)
			}
		}
	}
	// Re-separating the unchanged model serves everything from the pool.
	_, added2, reused2, _ := pool.separate(m)
	if added2 != 0 || reused2 != added {
		t.Fatalf("re-separate: added=%d reused=%d, want 0/%d", added2, reused2, added)
	}
}

// TestCliqueCutSeparation: pairwise-conflict rows merge into one clique
// cut, and the clique survives re-separation but dies with its edges.
func TestCliqueCutSeparation(t *testing.T) {
	m := NewModel(true)
	for j := 0; j < 3; j++ {
		m.AddVar("", 1)
	}
	m.AddRow("", []Coef{{0, 1}, {1, 1}}, LE, 1)
	m.AddRow("", []Coef{{1, 1}, {2, 1}}, LE, 1)
	m.AddRow("", []Coef{{0, 1}, {2, 1}}, LE, 1)
	pool := NewCutPool()
	cuts, added, _, _ := pool.separate(m)
	var cliqueCut *Cut
	for i := range cuts {
		if len(cuts[i].Coefs) == 3 && cuts[i].RHS == 1 {
			cliqueCut = &cuts[i]
		}
	}
	if cliqueCut == nil || added == 0 {
		t.Fatalf("no 3-clique cut in %+v", cuts)
	}
	// Unchanged model: the clique is reused, not re-grown.
	_, added2, reused2, _ := pool.separate(m)
	if added2 != 0 || reused2 == 0 {
		t.Fatalf("re-separate: added=%d reused=%d", added2, reused2)
	}
	// Removing one conflict row invalidates the clique.
	m2 := NewModel(true)
	for j := 0; j < 3; j++ {
		m2.AddVar("", 1)
	}
	m2.AddRow("", []Coef{{0, 1}, {1, 1}}, LE, 1)
	m2.AddRow("", []Coef{{1, 1}, {2, 1}}, LE, 1)
	cuts3, _, _, _ := pool.separate(m2)
	for _, c := range cuts3 {
		if len(c.Coefs) == 3 {
			t.Fatalf("stale clique cut survived edge removal: %+v", c)
		}
	}
}

// TestCutsPreserveAnswer: cuts alone (no presolve) never change status or
// objective, and the solver reports the counters.
func TestCutsPreserveAnswer(t *testing.T) {
	m := NewModel(false)
	for j := 0; j < 6; j++ {
		m.AddVar("", float64(j%3)-1)
	}
	m.AddRow("", []Coef{{0, 3}, {1, 4}, {2, 5}, {3, 2}}, LE, 7)
	m.AddRow("", []Coef{{2, 1}, {3, 1}, {4, 1}, {5, 1}}, GE, 2)
	want := Solve(m, Options{})
	got := Solve(m, Options{Cuts: true})
	if got.Status != want.Status || math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("cuts changed the answer: %v/%v vs %v/%v", got.Status, got.Objective, want.Status, want.Objective)
	}
	if got.CutsAdded == 0 {
		t.Fatalf("expected cuts on a conflict-heavy knapsack, got %+v", got)
	}
}

// TestCutPoolRetention: an EC-style re-solve with one changed row only
// re-separates that row.
func TestCutPoolRetention(t *testing.T) {
	build := func(extraRHS float64) *Model {
		m := NewModel(false)
		for j := 0; j < 8; j++ {
			m.AddVar("", 1)
		}
		m.AddRow("r0", []Coef{{0, 5}, {1, 4}, {2, 3}}, LE, 7)
		m.AddRow("r1", []Coef{{3, 6}, {4, 5}, {5, 4}}, LE, 9)
		m.AddRow("r2", []Coef{{5, 3}, {6, 3}, {7, 3}}, LE, extraRHS)
		return m
	}
	pool := NewCutPool()
	_, added1, _, fresh1 := pool.separate(build(5))
	if added1 == 0 {
		t.Fatal("no cuts separated")
	}
	if fresh1 != 3 {
		t.Fatalf("first separation touched %d rows, want 3", fresh1)
	}
	// Change only r2's rhs: r0/r1 cuts must be reused.
	_, added2, reused2, fresh2 := pool.separate(build(4))
	if reused2 == 0 {
		t.Fatalf("expected reuse of unchanged-row cuts, added=%d reused=%d", added2, reused2)
	}
	if added2 >= added1 {
		t.Fatalf("re-separation was not incremental: added %d then %d", added1, added2)
	}
	if fresh2 != 1 {
		t.Fatalf("re-solve re-separated %d rows, want only the changed one", fresh2)
	}
}

// TestGlobalNodeBudget: MaxNodes bounds the TOTAL node count of a
// parallel search, not the per-worker count.
func TestGlobalNodeBudget(t *testing.T) {
	m := benchSetCover(60, 120, 3, 7)
	const budget = 500
	res := Solve(m, Options{MaxNodes: budget, Workers: 4})
	if res.Status == Optimal || res.Status == Infeasible {
		t.Fatalf("instance solved within %d nodes (status %v); budget test needs a harder model", budget, res.Status)
	}
	// Each searcher can overshoot by the one node it was expanding when
	// the shared counter crossed the limit.
	if res.Nodes > budget+16 {
		t.Fatalf("nodes = %d, want <= %d (+slack): budget multiplied across workers", res.Nodes, budget)
	}
	// Serial runs respect the same global semantics.
	ser := Solve(m, Options{MaxNodes: budget})
	if ser.Nodes > budget {
		t.Fatalf("serial nodes = %d, want <= %d", ser.Nodes, budget)
	}
}

// TestContextCancelAborts: a cancelled context stops the kernel like a
// time limit, serial and parallel.
func TestContextCancelAborts(t *testing.T) {
	m := benchSetCover(70, 140, 3, 11)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the solver must notice at node 0
		start := time.Now()
		res := Solve(m, Options{Context: ctx, Workers: workers})
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("workers=%d: cancelled solve ran %v", workers, el)
		}
		if res.Status == Optimal || res.Status == Infeasible {
			t.Fatalf("workers=%d: cancelled solve claims proof (%v)", workers, res.Status)
		}
	}
	// Cancellation mid-search.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := Solve(m, Options{Context: ctx})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("mid-search cancel took %v", el)
	}
	if res.Status == Optimal || res.Status == Infeasible {
		t.Fatalf("mid-search cancel claims proof (%v)", res.Status)
	}
}
