package ilp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseTextBasic(t *testing.T) {
	in := `# tiny model
max x + 2 y - 3 z
st
c1: x + y <= 1
c2: 2 x - y >= 0
c3: x + z = 1
`
	m, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Maximize || m.NumVars() != 3 || m.NumRows() != 3 {
		t.Fatalf("parsed %v", m)
	}
	if m.Obj(0) != 1 || m.Obj(1) != 2 || m.Obj(2) != -3 {
		t.Fatalf("objective = %v %v %v", m.Obj(0), m.Obj(1), m.Obj(2))
	}
	r := m.RowAt(1)
	if r.Sense != GE || r.RHS != 0 || len(r.Coefs) != 2 {
		t.Fatalf("row 1 = %+v", r)
	}
}

func TestParseTextGluedCoefficients(t *testing.T) {
	in := "min 2x - y\nst\nr: 3x + -2y <= 4\n"
	m, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Obj(0) != 2 || m.Obj(1) != -1 {
		t.Fatalf("objective = %v %v", m.Obj(0), m.Obj(1))
	}
	r := m.RowAt(0)
	if r.Coefs[0].Val != 3 || r.Coefs[1].Val != -2 {
		t.Fatalf("row coefs = %+v", r.Coefs)
	}
}

func TestParseTextMergesDuplicateTerms(t *testing.T) {
	in := "min x\nst\nr: x + x <= 1\n"
	m, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := m.RowAt(0)
	if len(r.Coefs) != 1 || r.Coefs[0].Val != 2 {
		t.Fatalf("merged coefs = %+v", r.Coefs)
	}
}

func TestParseTextZeroObjective(t *testing.T) {
	in := "min 0\nst\nr: x >= 1\n"
	m, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVars() != 1 || m.Obj(0) != 0 {
		t.Fatalf("vars=%d obj=%v", m.NumVars(), m.Obj(0))
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no objective", "st\nr: x <= 1\n"},
		{"no comparison", "min x\nst\nr: x 1\n"},
		{"bad rhs", "min x\nst\nr: x <= one\n"},
		{"stuff before st", "min x\nr: x <= 1\n"},
		{"empty", ""},
		{"double number", "min 2 3 x\nst\n"},
		{"dangling coef", "min x + 2\nst\n"},
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	m := NewModel(true)
	x := m.AddVar("x", 1.5)
	y := m.AddVar("y", -2)
	z := m.AddVar("z", 0)
	m.AddRow("a", []Coef{{x, 1}, {y, 1}}, LE, 1)
	m.AddRow("b", []Coef{{y, -3}, {z, 1}}, GE, -2)
	m.AddRow("c", []Coef{{x, 1}, {z, 2.5}}, EQ, 2)

	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("%v\ntext:\n%s", err, buf.String())
	}
	if m2.NumVars() != 3 || m2.NumRows() != 3 || !m2.Maximize {
		t.Fatalf("round trip shape: %v", m2)
	}
	// The two models must have identical optima.
	a, b := Enumerate(m), Enumerate(m2)
	if a.Status != b.Status || math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("optima differ after round trip: %v/%v vs %v/%v", a.Status, a.Objective, b.Status, b.Objective)
	}
}

func TestWriteTextZeroObjective(t *testing.T) {
	m := NewModel(false)
	m.AddVar("x", 0)
	m.AddRow("r", []Coef{{0, 1}}, GE, 1)
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "min 0") {
		t.Fatalf("zero objective rendering: %q", buf.String())
	}
	if _, err := ParseText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}
