package ilp

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// sharedInc is the incumbent shared by parallel root searchers. The bound
// is read lock-free on every node; updates (rare — only on improving
// leaves) take the mutex.
type sharedInc struct {
	bits atomic.Uint64 // Float64bits of the best internal objective
	has  atomic.Bool
	mu   sync.Mutex
	sol  Solution
}

func newSharedInc() *sharedInc {
	g := &sharedInc{}
	g.bits.Store(math.Float64bits(math.Inf(1)))
	return g
}

func (g *sharedInc) best() (float64, bool) {
	if !g.has.Load() {
		return 0, false
	}
	return math.Float64frombits(g.bits.Load()), true
}

// tryUpdate installs z (internal minimization sense) with the assignment in
// fixed if it strictly improves on the shared incumbent.
func (g *sharedInc) tryUpdate(z float64, fixed []int8) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.has.Load() && z >= math.Float64frombits(g.bits.Load())-solveEps {
		return false
	}
	if g.sol == nil {
		g.sol = make(Solution, len(fixed))
	}
	for j, v := range fixed {
		if v == 1 {
			g.sol[j] = 1
		} else {
			g.sol[j] = 0
		}
	}
	g.bits.Store(math.Float64bits(z))
	g.has.Store(true)
	return true
}

func (g *sharedInc) solution() Solution {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sol.Clone()
}

// splitScore ranks root variables for the subproblem split under the
// active branching rule.
func (s *solver) splitScore(j int) float64 {
	switch s.branching {
	case BranchCoverGreedy:
		return float64(len(s.coverOfVar[j]))
	case BranchMostConstrained:
		return float64(len(s.varOccs[j]))
	default:
		return math.Abs(s.obj[j])
	}
}

// applyTask fixes the split variables per mask on top of the root
// propagation. Returns false when the combination conflicts (that part of
// the space is covered by other masks).
func (s *solver) applyTask(split []int32, mask uint32) bool {
	for i, j := range split {
		v := int8(mask >> i & 1)
		if s.fixed[j] != -1 {
			if s.fixed[j] != v {
				return false
			}
			continue
		}
		if !(s.assign(int(j), v) && s.propagate()) {
			return false
		}
	}
	return true
}

// solveParallel implements Options.Workers > 1: the root is propagated
// once, the top k branching variables are fixed to every combination, and
// the resulting subproblems are searched by a worker pool sharing an
// incumbent bound. Each worker keeps one solver and rewinds its trail
// between subproblems, so per-task setup is O(change), not O(model).
func solveParallel(m *Model, opts Options) Result {
	workers := opts.Workers
	probe := newSolver(m, opts)

	// One shared node counter enforces Options.MaxNodes globally: the
	// dive, the fallback, and every worker draw from the same budget, so
	// Workers never multiplies it.
	var budget *atomic.Int64
	if opts.MaxNodes > 0 {
		budget = new(atomic.Int64)
		probe.budget = budget
	}

	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	// Root propagation on the probe: a conflict proves infeasibility, and
	// the surviving unfixed variables drive the split.
	if !probe.rootPropagate() {
		res := probe.result()
		res.Status = Infeasible
		return res
	}

	// Bounded serial dive before splitting: the greedy/warm-start branch
	// order finds a strong first incumbent cheaply, and every parallel
	// subproblem then prunes against it from node one instead of
	// rediscovering it. A dive that finishes inside its budget has proven
	// the whole tree; return its answer outright.
	probe.deadline = deadline
	if ws := opts.WarmStart; ws != nil && len(ws) == m.NumVars() && m.Feasible(ws) {
		probe.incumbent = ws.Clone()
		probe.incumbentObj = probe.internalObj(ws)
		probe.hasIncumbent = true
	}
	const diveNodes = 4096
	probe.localCap = diveNodes // the global MaxNodes budget still applies
	rootMark := len(probe.trail)
	complete := probe.search()
	probe.clearQueue()
	probe.undoTo(rootMark)
	if complete && !probe.timedOut {
		// The dive proved the whole tree serially; report Workers: 1 so the
		// stats reflect how the answer was actually produced.
		res := probe.result()
		if probe.hasIncumbent {
			res.Status = Optimal
			res.Solution = probe.incumbent.Clone()
			res.Objective = m.Objective(res.Solution)
		} else {
			res.Status = Infeasible
		}
		return res
	}

	var unfixed []int32
	for j, v := range probe.fixed {
		if v == -1 {
			unfixed = append(unfixed, int32(j))
		}
	}
	if len(unfixed) < 2 {
		// Nothing meaningful to split; the serial engine finishes the job,
		// inheriting the original deadline and the dive's incumbent (its
		// counters are merged below so no explored node goes unreported).
		fbOpts := opts
		if probe.hasIncumbent {
			fbOpts.WarmStart = probe.incumbent
		}
		fb := newSolver(m, fbOpts)
		fb.deadline = deadline
		fb.budget = budget
		res := fb.run()
		pr := probe.result()
		res.Nodes += pr.Nodes
		res.LPSolves += pr.LPSolves
		res.Propagations += pr.Propagations
		res.RowScansSaved += pr.RowScansSaved
		res.LPWarmHits += pr.LPWarmHits
		res.CutTightenings += pr.CutTightenings
		return res
	}
	sort.Slice(unfixed, func(a, b int) bool {
		sa, sb := probe.splitScore(int(unfixed[a])), probe.splitScore(int(unfixed[b]))
		if sa != sb {
			return sa > sb
		}
		return unfixed[a] < unfixed[b]
	})
	k := 1
	for 1<<k < 4*workers && k < len(unfixed) && k < 10 {
		k++
	}
	split := unfixed[:k]

	shared := newSharedInc()
	if probe.hasIncumbent {
		shared.tryUpdate(probe.incumbentObj, probe.incumbent)
	}

	// Enumerate subproblems nearest the greedy/warm-start branch order
	// first, so early tasks tighten the shared bound for the rest.
	pref := uint32(0)
	for i, j := range split {
		if probe.firstValue(int(j)) == 1 {
			pref |= 1 << i
		}
	}
	masks := make([]uint32, 1<<k)
	for i := range masks {
		masks[i] = uint32(i)
	}
	sort.Slice(masks, func(a, b int) bool {
		da, db := bits.OnesCount32(masks[a]^pref), bits.OnesCount32(masks[b]^pref)
		if da != db {
			return da < db
		}
		return masks[a] < masks[b]
	})
	tasks := make(chan uint32, len(masks))
	for _, mask := range masks {
		tasks <- mask
	}
	close(tasks)

	pr := probe.result()
	nodes, lpSolves := pr.Nodes, pr.LPSolves
	props, scansSaved, lpWarmHits := pr.Propagations, pr.RowScansSaved, pr.LPWarmHits
	cutTight := pr.CutTightenings
	var incomplete atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := newSolver(m, opts)
			sub.shared = shared
			sub.deadline = deadline
			sub.budget = budget
			if sub.rootPropagate() {
				rootMark := len(sub.trail)
				for mask := range tasks {
					if sub.applyTask(split, mask) {
						if !sub.search() {
							incomplete.Store(true)
						}
					}
					sub.clearQueue()
					sub.undoTo(rootMark)
					if sub.timedOut || sub.aborted || sub.nodeLimited() {
						incomplete.Store(true)
						break
					}
				}
			}
			r := sub.result()
			atomic.AddInt64(&nodes, r.Nodes)
			atomic.AddInt64(&lpSolves, r.LPSolves)
			atomic.AddInt64(&props, r.Propagations)
			atomic.AddInt64(&scansSaved, r.RowScansSaved)
			atomic.AddInt64(&lpWarmHits, r.LPWarmHits)
			atomic.AddInt64(&cutTight, r.CutTightenings)
		}()
	}
	wg.Wait()

	res := Result{
		Nodes:          nodes,
		LPSolves:       lpSolves,
		Propagations:   props,
		RowScansSaved:  scansSaved,
		LPWarmHits:     lpWarmHits,
		CutTightenings: cutTight,
		Workers:        workers,
	}
	_, has := shared.best()
	switch {
	case has && !incomplete.Load():
		res.Status = Optimal
	case has:
		res.Status = Feasible
	case !incomplete.Load():
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	if has {
		res.Solution = shared.solution()
		res.Objective = m.Objective(res.Solution)
	}
	return res
}
