package ilp

// MaxEnumerateVars bounds the exhaustive reference optimizer.
const MaxEnumerateVars = 22

// Enumerate exhaustively optimizes the model by trying all 2^n points.
// It is the test oracle for the branch-and-bound solver and panics beyond
// MaxEnumerateVars variables.
func Enumerate(m *Model) Result {
	n := m.NumVars()
	if n > MaxEnumerateVars {
		panic("ilp: Enumerate instance too large")
	}
	sol := make(Solution, n)
	var best Solution
	bestObj := m.WorstObjective()
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				sol[j] = 1
			} else {
				sol[j] = 0
			}
		}
		if !m.Feasible(sol) {
			continue
		}
		z := m.Objective(sol)
		if best == nil || m.Better(z, bestObj) {
			best = sol.Clone()
			bestObj = z
		}
	}
	if best == nil {
		return Result{Status: Infeasible}
	}
	return Result{Status: Optimal, Objective: bestObj, Solution: best}
}

// CountFeasible exhaustively counts feasible 0-1 points (test helper;
// panics beyond MaxEnumerateVars).
func CountFeasible(m *Model) int {
	n := m.NumVars()
	if n > MaxEnumerateVars {
		panic("ilp: CountFeasible instance too large")
	}
	sol := make(Solution, n)
	count := 0
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				sol[j] = 1
			} else {
				sol[j] = 0
			}
		}
		if m.Feasible(sol) {
			count++
		}
	}
	return count
}
