// Package fault is a deterministic, seed-driven fault-injection harness:
// the systematic version of the one-off corruption scripts the crash
// tests used to hand-craft. A Plan is a set of rules — each matching an
// operation name and firing on a deterministic trigger (the nth matching
// call, every kth call, or a seeded coin flip) — that decide, per
// operation, whether to inject a fault and which kind:
//
//   - error:   the operation fails transiently without running;
//   - latency: the operation runs after an injected delay;
//   - torn:    a write lands partially (a torn journal tail) and fails;
//   - fsync:   the write lands but the durability acknowledgement fails
//     (the caller thinks it lost a record that is actually on disk);
//   - enospc:  the device is full (fails wrapping syscall.ENOSPC).
//
// Two properties make failures cheap to reproduce, in the delta-debugging
// spirit of making every failure a deterministic artifact: the same seed
// and call sequence always injects the same faults, and a compact spec
// string ("append:error:p=0.3;snapshot:enospc:nth=2") round-trips plans
// through flags and test matrices. store.NewFaulty wires a Plan into
// every operation of a session store; the chaos suite in
// internal/service drives the serving path through seed matrices of
// these plans.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Kind names an injectable fault class.
type Kind string

const (
	// KindError fails the operation transiently without running it.
	KindError Kind = "error"
	// KindLatency delays the operation, then runs it normally.
	KindLatency Kind = "latency"
	// KindTorn partially performs a write (a torn tail) and fails it.
	KindTorn Kind = "torn"
	// KindFsync performs the write but fails the durability ack: the
	// caller sees an error for a record that actually landed.
	KindFsync Kind = "fsync"
	// KindENOSPC fails the operation wrapping syscall.ENOSPC.
	KindENOSPC Kind = "enospc"
)

// validKinds gates spec parsing.
var validKinds = map[Kind]bool{
	KindError: true, KindLatency: true, KindTorn: true, KindFsync: true, KindENOSPC: true,
}

// Error is an injected fault error. Transient() marks it retryable so the
// serving path's store-error classification treats injected faults
// exactly like real transient I/O trouble.
type Error struct {
	Op   string
	Kind Kind
	// wrapped carries the underlying cause (syscall.ENOSPC for
	// KindENOSPC), surfaced through errors.Is/As.
	wrapped error
}

func (e *Error) Error() string {
	if e.wrapped != nil {
		return fmt.Sprintf("fault: injected %s on %s: %v", e.Kind, e.Op, e.wrapped)
	}
	return fmt.Sprintf("fault: injected %s on %s", e.Kind, e.Op)
}

// Unwrap exposes the underlying cause (e.g. syscall.ENOSPC).
func (e *Error) Unwrap() error { return e.wrapped }

// Transient marks every injected fault as retryable.
func (e *Error) Transient() bool { return true }

// Rule matches operations and decides when to fire. Exactly one trigger
// should be set: Nth (the nth matching call, 1-based), Every (every kth
// matching call), or P (an independent seeded coin flip per call).
type Rule struct {
	// Op matches the operation name ("append", "snapshot", "load",
	// "list", "delete"); "*" or "" matches every operation.
	Op string
	// Kind selects the fault to inject.
	Kind Kind
	// Nth fires on exactly the nth matching call (1-based).
	Nth int
	// Every fires on every kth matching call (k, 2k, 3k, ...).
	Every int
	// P fires with probability P on each matching call (0 < P ≤ 1),
	// drawn from the plan's seeded generator.
	P float64
	// Count caps how many times this rule fires (0 = unlimited).
	Count int
	// Latency is the injected delay for KindLatency (default 10ms).
	Latency time.Duration
}

// Injection is one positive fault decision.
type Injection struct {
	Kind    Kind
	Latency time.Duration
	// Err is the error the faulted operation should return (nil for
	// KindLatency, which only delays).
	Err error
}

// Plan is a deterministic fault schedule: rules evaluated against a
// per-operation call counter and one seeded random stream. It is safe
// for concurrent use; with a serialized caller (the service holds the
// session lock around store writes) the injection sequence is a pure
// function of (seed, rules, call sequence).
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []ruleState
	calls map[string]int
	// injected counts fired faults per "op:kind" for assertions and the
	// /v1/metrics-style stats surface.
	injected map[string]int64
	disarmed bool
}

type ruleState struct {
	Rule
	seen  int // matching calls so far
	fired int // injections so far
}

// NewPlan builds a Plan from explicit rules. The seed fixes the
// probabilistic triggers; plans with only Nth/Every rules ignore it.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{
		rng:      rand.New(rand.NewSource(seed)),
		calls:    make(map[string]int),
		injected: make(map[string]int64),
	}
	for _, r := range rules {
		if r.Kind == KindLatency && r.Latency <= 0 {
			r.Latency = 10 * time.Millisecond
		}
		p.rules = append(p.rules, ruleState{Rule: r})
	}
	return p
}

// ParsePlan builds a Plan from a compact spec: semicolon-separated rules
// of the form
//
//	op:kind:trigger[:count=N][:latency=DUR]
//
// where trigger is nth=N, every=K, or p=F — e.g.
//
//	"append:error:p=0.3;snapshot:enospc:nth=2;append:latency:every=4:latency=50ms"
//
// An empty spec yields a plan that never fires.
func ParsePlan(seed int64, spec string) (*Plan, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("fault: rule %q needs op:kind:trigger", part)
		}
		r := Rule{Op: fields[0], Kind: Kind(fields[1])}
		if !validKinds[r.Kind] {
			return nil, fmt.Errorf("fault: rule %q has unknown kind %q", part, fields[1])
		}
		trigger := false
		for _, opt := range fields[2:] {
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q has malformed option %q", part, opt)
			}
			var err error
			switch key {
			case "nth":
				r.Nth, err = strconv.Atoi(val)
				trigger = true
			case "every":
				r.Every, err = strconv.Atoi(val)
				trigger = true
			case "p":
				r.P, err = strconv.ParseFloat(val, 64)
				trigger = true
			case "count":
				r.Count, err = strconv.Atoi(val)
			case "latency":
				r.Latency, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("fault: rule %q has unknown option %q", part, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q option %q: %v", part, opt, err)
			}
		}
		if !trigger {
			return nil, fmt.Errorf("fault: rule %q has no trigger (nth=, every=, or p=)", part)
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("fault: rule %q probability %v out of [0,1]", part, r.P)
		}
		rules = append(rules, r)
	}
	return NewPlan(seed, rules...), nil
}

// Decide evaluates the plan for one operation call. It returns the first
// matching rule's injection, or ok=false to let the operation run clean.
// Every probabilistic rule consumes randomness on every matching call
// whether or not it fires, so one rule's outcome never shifts another's
// stream position.
func (p *Plan) Decide(op string) (Injection, bool) {
	if p == nil {
		return Injection{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[op]++
	var hit *ruleState
	for i := range p.rules {
		r := &p.rules[i]
		if r.Op != "" && r.Op != "*" && r.Op != op {
			continue
		}
		r.seen++
		fire := false
		switch {
		case r.Nth > 0:
			fire = r.seen == r.Nth
		case r.Every > 0:
			fire = r.seen%r.Every == 0
		case r.P > 0:
			fire = p.rng.Float64() < r.P
		}
		if p.disarmed || !fire || (r.Count > 0 && r.fired >= r.Count) || hit != nil {
			continue
		}
		r.fired++
		hit = r
	}
	if hit == nil {
		return Injection{}, false
	}
	p.injected[op+":"+string(hit.Kind)]++
	inj := Injection{Kind: hit.Kind, Latency: hit.Latency}
	switch hit.Kind {
	case KindENOSPC:
		inj.Err = &Error{Op: op, Kind: hit.Kind, wrapped: syscall.ENOSPC}
	case KindLatency:
		// Delay only; the operation proceeds.
	default:
		inj.Err = &Error{Op: op, Kind: hit.Kind}
	}
	return inj, true
}

// Disarm stops all future injections (rule bookkeeping continues, so
// Stats stay meaningful). Chaos tests use it to model a fault window
// that ends — the store "heals" — without rebuilding the plan.
func (p *Plan) Disarm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disarmed = true
}

// Injected reports the total faults fired.
func (p *Plan) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, v := range p.injected {
		n += v
	}
	return n
}

// Stats returns the fired-fault counts keyed "op:kind", sorted for
// stable logging.
func (p *Plan) Stats() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

// String renders the fired-fault stats compactly ("append:error=3
// snapshot:enospc=1"), for test logs.
func (p *Plan) String() string {
	stats := p.Stats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, stats[k])
	}
	return strings.Join(parts, " ")
}
