package fault

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestNthTrigger(t *testing.T) {
	p := NewPlan(0, Rule{Op: "append", Kind: KindError, Nth: 3})
	for i := 1; i <= 5; i++ {
		inj, ok := p.Decide("append")
		if (i == 3) != ok {
			t.Fatalf("call %d: fired=%v", i, ok)
		}
		if ok && inj.Err == nil {
			t.Fatal("error fault without error")
		}
	}
	if got := p.Injected(); got != 1 {
		t.Fatalf("injected %d, want 1", got)
	}
}

func TestEveryTriggerAndCountCap(t *testing.T) {
	p := NewPlan(0, Rule{Op: "append", Kind: KindError, Every: 2, Count: 2})
	var fired []int
	for i := 1; i <= 8; i++ {
		if _, ok := p.Decide("append"); ok {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired on %v, want [2 4]", fired)
	}
}

func TestOpMatchingAndWildcard(t *testing.T) {
	p := NewPlan(0,
		Rule{Op: "append", Kind: KindError, Nth: 1},
		Rule{Op: "*", Kind: KindENOSPC, Nth: 2},
	)
	if _, ok := p.Decide("snapshot"); ok { // wildcard seen=1
		t.Fatal("snapshot call 1 fired")
	}
	// The append rule (nth=1) and the wildcard (seen=2) both match this
	// call; the first matching rule wins and the wildcard's nth moment
	// passes unfired.
	inj, ok := p.Decide("append")
	if !ok || inj.Kind != KindError {
		t.Fatalf("append call: %+v ok=%v", inj, ok)
	}
	inj, ok = p.Decide("load")
	if ok {
		t.Fatalf("load fired %+v", inj)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		p := NewPlan(seed, Rule{Op: "append", Kind: KindError, P: 0.5})
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = p.Decide("append")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-call sequences")
	}
}

func TestENOSPCWrapsErrno(t *testing.T) {
	p := NewPlan(0, Rule{Op: "append", Kind: KindENOSPC, Nth: 1})
	inj, ok := p.Decide("append")
	if !ok || !errors.Is(inj.Err, syscall.ENOSPC) {
		t.Fatalf("injection %+v ok=%v, want ENOSPC", inj, ok)
	}
	var fe *Error
	if !errors.As(inj.Err, &fe) || !fe.Transient() {
		t.Fatal("injected fault not marked transient")
	}
}

func TestLatencyInjectionHasNoError(t *testing.T) {
	p := NewPlan(0, Rule{Op: "append", Kind: KindLatency, Nth: 1, Latency: 5 * time.Millisecond})
	inj, ok := p.Decide("append")
	if !ok || inj.Err != nil || inj.Latency != 5*time.Millisecond {
		t.Fatalf("latency injection %+v ok=%v", inj, ok)
	}
}

func TestDisarm(t *testing.T) {
	p := NewPlan(0, Rule{Op: "*", Kind: KindError, P: 1})
	if _, ok := p.Decide("append"); !ok {
		t.Fatal("armed plan did not fire")
	}
	p.Disarm()
	if _, ok := p.Decide("append"); ok {
		t.Fatal("disarmed plan fired")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan(7, "append:error:p=0.5;snapshot:enospc:nth=2;append:latency:every=4:latency=50ms;load:fsync:nth=1:count=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(p.rules))
	}
	if r := p.rules[2].Rule; r.Every != 4 || r.Latency != 50*time.Millisecond {
		t.Fatalf("latency rule parsed as %+v", r)
	}
	if r := p.rules[3].Rule; r.Count != 3 || r.Kind != KindFsync {
		t.Fatalf("fsync rule parsed as %+v", r)
	}
	if p, err := ParsePlan(0, " "); err != nil || p.Injected() != 0 {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{
		"append",                 // no kind/trigger
		"append:explode:nth=1",   // unknown kind
		"append:error",           // no trigger
		"append:error:count=2",   // count is not a trigger
		"append:error:p=1.5",     // probability out of range
		"append:error:nth",       // malformed option
		"append:error:nth=1:x=2", // unknown option
	} {
		if _, err := ParsePlan(0, bad); err == nil {
			t.Fatalf("spec %q parsed", bad)
		}
	}
}

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	if _, ok := p.Decide("append"); ok {
		t.Fatal("nil plan fired")
	}
}
