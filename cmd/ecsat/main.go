// Command ecsat runs the ILP-based engineering-change flows on DIMACS CNF
// files.
//
// Usage:
//
//	ecsat solve file.cnf                 # set-cover ILP solve (max don't-cares)
//	ecsat enable -mode sc file.cnf       # enabling EC (§5): constraint mode
//	ecsat enable -mode of file.cnf       # enabling EC: objective mode
//	ecsat fast -add "−1 2 0; 3 0" file.cnf    # fast EC (§6) after adding clauses
//	ecsat preserve -add "..." file.cnf   # preserving EC (§7)
//
// Changes are given as DIMACS-style clauses separated by ';' (the final 0
// is optional), and/or as -drop/-grow/-elim lists.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ilpec/internal/cnf"
	"ilpec/internal/core"
	"ilpec/internal/encode"
	"ilpec/internal/ilp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	mode := fs.String("mode", "sc", "enable mode: sc (constraints) or of (objective)")
	k := fs.Int("k", 2, "enabling satisfaction level")
	add := fs.String("add", "", "clauses to add, ';'-separated DIMACS literals")
	elim := fs.String("elim", "", "comma-separated variables to eliminate")
	grow := fs.Int("grow", 0, "number of variables to add")
	drop := fs.String("drop", "", "comma-separated clause indices to remove")
	timeout := fs.Duration("timeout", time.Minute, "exact solver time limit")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		usage()
	}
	f, err := cnf.ParseDIMACSFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := ilp.Options{TimeLimit: *timeout}

	switch cmd {
	case "solve":
		a, res, err := core.PlainResolve(f, opts)
		if err != nil {
			fatal(err)
		}
		report(f, a, res)
	case "enable":
		m := core.EnableConstraints
		if strings.EqualFold(*mode, "of") {
			m = core.EnableObjective
		}
		res, err := core.SolveEnable(f, core.EnableOptions{Mode: m, K: *k}, opts)
		if err != nil {
			fatal(err)
		}
		report(f, res.Assignment, res.ILP)
		rep := core.VerifyFlexibility(f, res.Assignment, *k)
		fmt.Printf("flexible clauses: %d/%d (k-sat %d, supported %d)\n",
			rep.Flexible(), rep.Total, rep.KSatisfied, rep.Supported)
	case "fast", "preserve", "replan":
		changes, err := parseChanges(*add, *elim, *drop, *grow)
		if err != nil {
			fatal(err)
		}
		if len(changes) == 0 {
			fatal(fmt.Errorf("no changes given (use -add/-elim/-drop/-grow)"))
		}
		// Original solution first.
		p, _, err := core.PlainResolve(f, opts)
		if err != nil {
			fatal(fmt.Errorf("original solve: %w", err))
		}
		fPrime, err := core.Apply(f, changes)
		if err != nil {
			fatal(err)
		}
		switch cmd {
		case "fast":
			res, err := core.FastResolve(fPrime, p, core.FastOptions{Solve: opts})
			if err != nil {
				fatal(err)
			}
			if res.AlreadySatisfied {
				fmt.Println("original solution survives the change; nothing to do")
				return
			}
			fmt.Printf("fast EC: sub-instance %d vars / %d clauses (escalations %d)\n",
				res.SubVars, res.SubClauses, res.Escalations)
			report(fPrime, res.Assignment, res.ILP)
			fmt.Printf("preserved: %.1f%%\n", 100*res.Assignment.PreservedFraction(p))
		case "preserve":
			res, err := core.PreserveResolve(fPrime, p, core.PreserveOptions{
				Mode: core.PreserveMaximize, Solve: opts,
			})
			if err != nil {
				fatal(err)
			}
			report(fPrime, res.Assignment, res.ILP)
			fmt.Printf("preserved: %.1f%%\n", 100*res.Preserved)
		case "replan":
			a, res, err := core.PlainResolve(fPrime, opts)
			if err != nil {
				fatal(err)
			}
			report(fPrime, a, res)
			fmt.Printf("preserved: %.1f%%\n", 100*a.PreservedFraction(p))
		}
	case "encode":
		e := encode.New(f)
		if err := ilp.WriteText(os.Stdout, e.Model); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func parseChanges(add, elim, drop string, grow int) ([]core.Change, error) {
	var out []core.Change
	for i := 0; i < grow; i++ {
		out = append(out, core.GrowVariable())
	}
	if drop != "" {
		for _, tok := range strings.Split(drop, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("bad clause index %q", tok)
			}
			out = append(out, core.DropClause(idx))
		}
	}
	if elim != "" {
		for _, tok := range strings.Split(elim, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("bad variable %q", tok)
			}
			out = append(out, core.EliminateVariable(v))
		}
	}
	if add != "" {
		for _, cl := range strings.Split(add, ";") {
			var lits []int
			for _, tok := range strings.Fields(cl) {
				n, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("bad literal %q", tok)
				}
				if n == 0 {
					break
				}
				lits = append(lits, n)
			}
			if len(lits) > 0 {
				out = append(out, core.NewClause(lits...))
			}
		}
	}
	return out, nil
}

func report(f *cnf.Formula, a cnf.Assignment, res ilp.Result) {
	fmt.Printf("status: %s  nodes: %d  runtime: %v\n", res.Status, res.Nodes, res.Runtime)
	fmt.Printf("committed %d / %d variables (%d don't-cares)\n",
		a.AssignedCount(), f.NumVars, a.DontCareCount())
	if f.NumVars <= 40 {
		fmt.Println(a)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ecsat <solve|enable|fast|preserve|replan|encode> [flags] file.cnf
run 'ecsat <cmd> -h' for the flags of each subcommand`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecsat:", err)
	os.Exit(1)
}
