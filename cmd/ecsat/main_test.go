package main

import (
	"testing"

	"ilpec/internal/core"
)

func TestParseChanges(t *testing.T) {
	chs, err := parseChanges("-1 2 0; 3 -4", "5,6", "0,2", 2)
	if err != nil {
		t.Fatal(err)
	}
	var grows, drops, elims, adds int
	for _, c := range chs {
		switch c.Kind {
		case core.AddVariable:
			grows++
		case core.RemoveClause:
			drops++
		case core.RemoveVariable:
			elims++
		case core.AddClause:
			adds++
		}
	}
	if grows != 2 || drops != 2 || elims != 2 || adds != 2 {
		t.Fatalf("parsed %d/%d/%d/%d", grows, drops, elims, adds)
	}
	// Ordering: grows, drops, elims, adds.
	if chs[0].Kind != core.AddVariable || chs[len(chs)-1].Kind != core.AddClause {
		t.Fatal("change ordering wrong")
	}
	// Clause literals parsed with the DIMACS terminator honored.
	first := chs[len(chs)-2]
	if len(first.Clause) != 2 || first.Clause[0] != -1 || first.Clause[1] != 2 {
		t.Fatalf("clause = %v", first.Clause)
	}
}

func TestParseChangesErrors(t *testing.T) {
	if _, err := parseChanges("x 0", "", "", 0); err == nil {
		t.Fatal("bad literal accepted")
	}
	if _, err := parseChanges("", "a", "", 0); err == nil {
		t.Fatal("bad variable accepted")
	}
	if _, err := parseChanges("", "", "b", 0); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestParseChangesEmpty(t *testing.T) {
	chs, err := parseChanges("", "", "", 0)
	if err != nil || len(chs) != 0 {
		t.Fatalf("empty parse: %v %v", chs, err)
	}
	// Blank clause segments are skipped.
	chs, err = parseChanges(" ; ;1 0", "", "", 0)
	if err != nil || len(chs) != 1 {
		t.Fatalf("blank segments: %v %v", chs, err)
	}
}
