package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ilpec/internal/analysis"
)

// TestRunCleanPackageJSON drives the whole binary path — load, analyze,
// JSON output — over a package that must be ecvet-clean.
func TestRunCleanPackageJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "ilpec/internal/analysis"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s stdout: %s", code, stderr.String(), stdout.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected no findings, got %v", diags)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr %q lacks unknown-analyzer error", stderr.String())
	}
}

func TestSelectAnalyzers(t *testing.T) {
	sel, err := selectAnalyzers("lockguard, walfirst")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "lockguard" || sel[1].Name != "walfirst" {
		t.Errorf("unexpected selection: %v", sel)
	}
	if sel, err := selectAnalyzers(""); err != nil || len(sel) != len(all) {
		t.Errorf("empty -only should select all analyzers, got %d (%v)", len(sel), err)
	}
}
