// Command ecvet is the project's invariant checker: a multichecker over
// the analyzers in internal/analysis that proves the WAL
// (append-before-ack), lease-fencing, lock-annotation, and
// error-classification disciplines at analysis time, plus conservative
// reimplementations of the standard nilness and shadow vet checks.
//
// Usage:
//
//	go run ./cmd/ecvet [-json] [-only a,b] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 usage
// or load failure. Suppress an audited false positive with
//
//	//ecvet:ignore <analyzer> <reason>
//
// on the offending line (or the line above); the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ilpec/internal/analysis"
	"ilpec/internal/analysis/ctxflow"
	"ilpec/internal/analysis/leasefence"
	"ilpec/internal/analysis/lockguard"
	"ilpec/internal/analysis/nilness"
	"ilpec/internal/analysis/shadow"
	"ilpec/internal/analysis/transientclass"
	"ilpec/internal/analysis/walfirst"
)

// all is the ecvet analyzer suite, project invariants first.
var all = []*analysis.Analyzer{
	lockguard.Analyzer,
	walfirst.Analyzer,
	leasefence.Analyzer,
	transientclass.Analyzer,
	ctxflow.Analyzer,
	nilness.Analyzer,
	shadow.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ecvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ecvet [-json] [-only a,b] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "ecvet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "ecvet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "ecvet: %v\n", err)
		return 2
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "ecvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
