package main

import (
	"io"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ilpec/internal/ilp
cpu: AMD EPYC 7B13
BenchmarkSolverSetCover-8       	     100	    123456 ns/op	  813508 nodes/sec	    2345 B/op	      67 allocs/op
BenchmarkSolverSetCoverLarge-8  	       5	 234567890.5 ns/op	  999999 B/op	    1234 allocs/op
BenchmarkSolverPacked-8         	     200	     55555 ns/op
BenchmarkSolverWarmStart        	      50	     777.25 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	ilpec/internal/ilp	4.2s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(results), results)
	}
	sc := results["SolverSetCover"]
	if sc.Iterations != 100 || sc.NsPerOp != 123456 {
		t.Fatalf("SolverSetCover %+v", sc)
	}
	if sc.AllocsPerOp == nil || *sc.AllocsPerOp != 67 || sc.BytesPerOp == nil || *sc.BytesPerOp != 2345 {
		t.Fatalf("SolverSetCover allocs/bytes %+v", sc)
	}
	// No -benchmem columns → nil, omitted from JSON.
	if p := results["SolverPacked"]; p.AllocsPerOp != nil || p.BytesPerOp != nil {
		t.Fatalf("SolverPacked %+v should have no alloc columns", p)
	}
	// Fractional ns/op and no GOMAXPROCS suffix both parse.
	if w := results["SolverWarmStart"]; w.NsPerOp != 777.25 {
		t.Fatalf("SolverWarmStart %+v", w)
	}
	if l := results["SolverSetCoverLarge"]; l.NsPerOp != 234567890.5 {
		t.Fatalf("SolverSetCoverLarge %+v", l)
	}
}

func TestParseKeepsBestOfRepeats(t *testing.T) {
	in := `BenchmarkX-8   10   200 ns/op
BenchmarkX-8   10   100 ns/op
BenchmarkX-8   10   300 ns/op
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := results["X"].NsPerOp; got != 100 {
		t.Fatalf("kept %v ns/op, want the best run (100)", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("no-benchmark input accepted")
	}
}

func TestCompareResults(t *testing.T) {
	baseline := map[string]Metrics{
		"SolverSetCover": {NsPerOp: 1000},
		"SolverPacked":   {NsPerOp: 1000},
		"SolverGone":     {NsPerOp: 1000},
		"ParseOnly":      {NsPerOp: 1000},
	}
	results := map[string]Metrics{
		"SolverSetCover": {NsPerOp: 1100}, // +10%: within the gate
		"SolverPacked":   {NsPerOp: 1500}, // +50%: regression
		"SolverNew":      {NsPerOp: 9999}, // no baseline: informational
		"ParseOnly":      {NsPerOp: 9000}, // filtered out by -match Solver
	}
	var buf strings.Builder
	n := compareResults(&buf, results, baseline, "Solver", 0.20)
	if n != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION SolverPacked") {
		t.Fatalf("missing regression line:\n%s", out)
	}
	if strings.Contains(out, "ParseOnly") {
		t.Fatalf("-match filter leaked:\n%s", out)
	}
	if !strings.Contains(out, "SolverNew: new benchmark") || !strings.Contains(out, "SolverGone: baseline benchmark missing") {
		t.Fatalf("one-sided benchmarks not reported:\n%s", out)
	}
	// Everything within threshold: gate passes.
	if n := compareResults(io.Discard, baseline, baseline, "", 0.20); n != 0 {
		t.Fatalf("identical runs regressed: %d", n)
	}
}
