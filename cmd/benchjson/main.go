// Command benchjson converts `go test -bench` output into a JSON map of
// benchmark name → metrics, for the CI bench artifact (BENCH_PR2.json and
// successors): machine-readable points on the repo's performance
// trajectory that successive PRs can diff.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./internal/ilp | benchjson -o BENCH.json
//
// With -compare BASELINE.json the freshly parsed results are also diffed
// against a committed baseline: any benchmark whose name matches the
// -match prefix and whose ns/op regressed by more than -threshold
// (default 20%) fails the run with exit code 1 — the CI bench job's
// regression gate for solver wall-clock. Benchmarks present on only one
// side are reported but never fail the gate.
//
// The GOMAXPROCS suffix (-8 in BenchmarkFoo-8) is stripped so names are
// stable across runner shapes. Benchmarks that appear multiple times (e.g.
// -count > 1) keep the best (lowest ns/op) run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to diff against; regressions past -threshold fail")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional ns/op regression vs the baseline")
	match := flag.String("match", "", "only gate benchmarks whose name starts with this prefix")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: reads bench output from stdin; no arguments expected")
		os.Exit(2)
	}
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		baseline, err := loadBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regressions := compareResults(os.Stderr, results, baseline, *match, *threshold)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s\n",
				regressions, *threshold*100, *compare)
			os.Exit(1)
		}
	}
}

// loadBaseline reads a previously emitted benchjson file.
func loadBaseline(path string) (map[string]Metrics, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	var baseline map[string]Metrics
	if err := json.NewDecoder(fh).Decode(&baseline); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return baseline, nil
}

// compareResults reports per-benchmark deltas to w and returns how many
// gated benchmarks (name matching the prefix, present on both sides)
// regressed past the threshold. One-sided benchmarks are informational.
func compareResults(w io.Writer, results, baseline map[string]Metrics, match string, threshold float64) int {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		if match != "" && !strings.HasPrefix(name, match) {
			continue
		}
		old, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: new benchmark (no baseline)\n", name)
			continue
		}
		if old.NsPerOp <= 0 {
			continue
		}
		ratio := results[name].NsPerOp / old.NsPerOp
		switch {
		case ratio > 1+threshold:
			fmt.Fprintf(w, "benchjson: REGRESSION %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
				name, results[name].NsPerOp, old.NsPerOp, (ratio-1)*100)
			regressions++
		default:
			fmt.Fprintf(w, "benchjson: ok %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
				name, results[name].NsPerOp, old.NsPerOp, (ratio-1)*100)
		}
	}
	for name := range baseline {
		if match != "" && !strings.HasPrefix(name, match) {
			continue
		}
		if _, ok := results[name]; !ok {
			fmt.Fprintf(w, "benchjson: %s: baseline benchmark missing from this run\n", name)
		}
	}
	return regressions
}

// parse extracts benchmark results from go test -bench output. A result
// line is "BenchmarkName[-P] N <value> <unit> [<value> <unit>...]"; custom
// units (e.g. the solver's nodes/sec) are skipped, so B/op and allocs/op
// are found wherever they appear.
func parse(r io.Reader) (map[string]Metrics, error) {
	results := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo ... FAIL" status lines
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		var metrics Metrics
		metrics.Iterations = iters
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				ns, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				metrics.NsPerOp = ns
				sawNs = true
			case "B/op":
				b, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
				}
				metrics.BytesPerOp = &b
			case "allocs/op":
				a, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
				}
				metrics.AllocsPerOp = &a
			}
		}
		if !sawNs {
			continue
		}
		if prev, ok := results[name]; !ok || metrics.NsPerOp < prev.NsPerOp {
			results[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return results, nil
}
