// Command ecrouter is the stateless front door for an ecserve cluster:
// it consistent-hashes session ids onto the live, ready nodes found in
// the shared store's membership records and reverse-proxies the HTTP/JSON
// API unchanged (see internal/router for the routing rules).
//
// Usage:
//
//	ecrouter -addr :8090 -data-dir /var/lib/ecfleet
//	ecrouter -addr :8090 -data-dir /var/lib/ecfleet -refresh 500ms -retries 2
//
// -data-dir must be the same shared directory every ecserve node was
// started with (-cluster -data-dir ...). The router keeps no session
// state: kill it, run several for HA — placements agree because every
// router hashes onto the same ring. Correctness under a stale ring is
// the servers' job (lease fencing answers 503 "not_owner" + Retry-After
// and clients simply retry), so a router can never cause a double
// commit; see the README "Clustering" section.
//
// Router-specific endpoints on top of the proxied API:
//
//	GET /v1/cluster        membership + ring view (per-node ready bit)
//	GET /v1/metrics        router counters plus every node's metrics
//	GET /metrics           Prometheus text exposition (?format=json)
//	GET /v1/debug/traces   recent slow-request span trees
//	GET /healthz           router liveness
//	GET /readyz            503 until at least one ready node is routable
//
// -debug-addr serves net/http/pprof profiling on a separate (private)
// listener; ?trace=1 on any proxied request returns the combined
// router + node span tree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ilpec/internal/router"
	"ilpec/internal/store"
)

type config struct {
	addr         string
	dataDir      string
	vnodes       int
	refresh      time.Duration
	probeTimeout time.Duration
	retries      int
	drain        time.Duration
	debugAddr    string
	slowTrace    time.Duration
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "ecrouter:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, log.New(os.Stderr, "ecrouter: ", log.LstdFlags), nil); err != nil {
		fmt.Fprintln(os.Stderr, "ecrouter:", err)
		os.Exit(1)
	}
}

func parseFlags(args []string, errOut io.Writer) (config, error) {
	fs := flag.NewFlagSet("ecrouter", flag.ContinueOnError)
	fs.SetOutput(errOut)
	addr := fs.String("addr", ":8090", "listen address")
	dataDir := fs.String("data-dir", "", "shared cluster store directory (same as every node's -data-dir; required)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per server on the hash ring (0 = default 160; must match fleet-wide)")
	refresh := fs.Duration("refresh", time.Second, "membership poll + readiness probe cadence")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "per-node /readyz probe timeout")
	retries := fs.Int("retries", 2, "ring successors tried after the owner for idempotent requests (negative = none)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain budget")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof profiling on this address (empty = off; keep it private)")
	slowTrace := fs.Duration("slow-trace", 0, "requests at least this slow are retained at /v1/debug/traces (0 = default 250ms)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if *dataDir == "" {
		return config{}, fmt.Errorf("-data-dir is required (the cluster's shared store holds the membership records)")
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return config{
		addr:         *addr,
		dataDir:      *dataDir,
		vnodes:       *vnodes,
		refresh:      *refresh,
		probeTimeout: *probeTimeout,
		retries:      *retries,
		drain:        *drain,
		debugAddr:    *debugAddr,
		slowTrace:    *slowTrace,
	}, nil
}

// serve runs the router until ctx is cancelled. ready, when non-nil,
// receives the bound address once the listener is up.
func serve(ctx context.Context, cfg config, logger *log.Logger, ready func(addr string)) error {
	st, err := store.NewSharedFile(cfg.dataDir)
	if err != nil {
		return err
	}
	defer st.Close()
	rt, err := router.New(router.Options{
		Store:              st,
		VirtualNodes:       cfg.vnodes,
		Refresh:            cfg.refresh,
		ProbeTimeout:       cfg.probeTimeout,
		Retries:            cfg.retries,
		Logger:             logger,
		SlowTraceThreshold: cfg.slowTrace,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	defer rt.Stop()
	if cfg.debugAddr != "" {
		stopDebug, err := serveDebug(cfg.debugAddr, logger)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer stopDebug()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("routing on %s over %s (refresh=%v retries=%d)",
		ln.Addr(), cfg.dataDir, cfg.refresh, cfg.retries)
	if ready != nil {
		ready(ln.Addr().String())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (drain %v)", cfg.drain)
	//ecvet:ignore ctxflow ctx is already cancelled here; the drain needs a fresh deadline
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	m := rt.Metrics()
	logger.Printf("proxied %d requests (%d failovers, %d minted ids)", m.Proxied, m.Failovers, m.MintedIDs)
	return nil
}

// serveDebug exposes net/http/pprof on its own listener — kept off the
// routing address so profiling endpoints are never publicly reachable.
// The returned stop closes the listener.
func serveDebug(addr string, logger *log.Logger) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // closed via stop
	logger.Printf("pprof profiling on http://%s/debug/pprof/", ln.Addr())
	return func() { srv.Close() }, nil
}
