// Command dimacsgen writes the synthetic benchmark families to DIMACS CNF
// files (see DESIGN.md §4 for how they substitute for the original
// non-redistributable DIMACS instances).
//
// Usage:
//
//	dimacsgen -list
//	dimacsgen -name jnh1 -out jnh1.cnf
//	dimacsgen -all -dir bench/ -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ilpec/internal/cnf"
	"ilpec/internal/gen"
)

func main() {
	list := flag.Bool("list", false, "list the available instances")
	name := flag.String("name", "", "instance to generate")
	out := flag.String("out", "", "output file (default <name>.cnf)")
	all := flag.Bool("all", false, "generate every instance")
	dir := flag.String("dir", ".", "output directory for -all")
	scale := flag.Float64("scale", 1, "dimension scale factor (0,1]")
	withPlant := flag.Bool("plant", false, "also write the planted assignment as comments")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-12s %-6s %8s %9s\n", "name", "family", "vars", "clauses")
		for _, s := range gen.All() {
			fmt.Printf("%-12s %-6s %8d %9d\n", s.Name, s.Family, s.Vars, s.Clauses)
		}
	case *all:
		for _, s := range gen.All() {
			path := filepath.Join(*dir, fileName(gen.Scaled(s, *scale).Name))
			if err := writeSpec(gen.Scaled(s, *scale), path, *withPlant); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	case *name != "":
		s, ok := gen.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown instance %q (use -list)", *name))
		}
		s = gen.Scaled(s, *scale)
		path := *out
		if path == "" {
			path = fileName(s.Name)
		}
		if err := writeSpec(s, path, *withPlant); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fileName(name string) string {
	return strings.ReplaceAll(name, "@", "-") + ".cnf"
}

func writeSpec(s gen.Spec, path string, withPlant bool) error {
	f, plant := s.Generate()
	comments := []string{
		fmt.Sprintf("synthetic %s-family instance standing in for DIMACS %s", s.Family, s.Name),
		fmt.Sprintf("planted satisfying (2-satisfying) assignment, seed %d", s.Seed),
	}
	if withPlant {
		var b strings.Builder
		b.WriteString("plant:")
		for v := 1; v <= f.NumVars; v++ {
			switch plant.Get(v) {
			case cnf.True:
				fmt.Fprintf(&b, " %d", v)
			case cnf.False:
				fmt.Fprintf(&b, " %d", -v)
			}
		}
		comments = append(comments, b.String())
	}
	return cnf.WriteDIMACSFile(path, f, comments...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dimacsgen:", err)
	os.Exit(1)
}
