package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCase executes run with a stdin payload and returns exit code + output.
func runCase(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRunStdinExact(t *testing.T) {
	model := "max x + y\nst\nc: x + y <= 1\n"
	code, out, errOut := runCase(t, []string{"-"}, model)
	if code != exitOK {
		t.Fatalf("exit %d (stderr %q)", code, errOut)
	}
	if !strings.Contains(out, "status: OPTIMAL") || !strings.Contains(out, "objective: 1") {
		t.Fatalf("output %q", out)
	}
}

func TestRunStdinQuiet(t *testing.T) {
	model := "max x + y\nst\nc: x + y <= 1\n"
	code, out, _ := runCase(t, []string{"-quiet", "-"}, model)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "nodes:") || strings.Contains(out, " = 1") {
		t.Fatalf("-quiet leaked detail: %q", out)
	}
}

func TestRunStdinHeuristic(t *testing.T) {
	model := "max x + y\nst\nc: x + y <= 1\n"
	code, out, _ := runCase(t, []string{"-solver", "heur", "-seed", "3", "-"}, model)
	if code != exitOK || !strings.Contains(out, "status: FEASIBLE") {
		t.Fatalf("exit %d output %q", code, out)
	}
}

func TestRunInfeasibleExitCode(t *testing.T) {
	// x + y ≥ 3 has no 0-1 point: proven infeasible must exit 3.
	model := "min x + y\nst\nc: x + y >= 3\n"
	code, out, _ := runCase(t, []string{"-"}, model)
	if code != exitInfeasible {
		t.Fatalf("exit %d, want %d (output %q)", code, exitInfeasible, out)
	}
	if !strings.Contains(out, "status: INFEASIBLE") {
		t.Fatalf("output %q", out)
	}
}

func TestRunParseErrorExitCode(t *testing.T) {
	code, _, errOut := runCase(t, []string{"-"}, "this is not a model")
	if code != exitError {
		t.Fatalf("exit %d, want %d", code, exitError)
	}
	if !strings.Contains(errOut, "ilprun:") {
		t.Fatalf("stderr %q", errOut)
	}
}

func TestRunUsageExitCode(t *testing.T) {
	if code, _, _ := runCase(t, nil, ""); code != exitUsage {
		t.Fatalf("no-args exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCase(t, []string{"a.ilp", "b.ilp"}, ""); code != exitUsage {
		t.Fatalf("two-args exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCase(t, []string{"-nope", "-"}, ""); code != exitUsage {
		t.Fatalf("bad-flag exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCase(t, []string{"-solver", "quantum", "-"}, "min x\nst\nc: x >= 1\n"); code != exitError {
		t.Fatal("unknown solver accepted")
	}
	if code, _, _ := runCase(t, []string{"-bounding", "psychic", "-"}, "min x\nst\nc: x >= 1\n"); code != exitError {
		t.Fatal("unknown bounding accepted")
	}
	if code, _, _ := runCase(t, []string{"-branching", "dice", "-"}, "min x\nst\nc: x >= 1\n"); code != exitError {
		t.Fatal("unknown branching accepted")
	}
}

func TestRunMissingFileExitCode(t *testing.T) {
	code, _, errOut := runCase(t, []string{filepath.Join(t.TempDir(), "absent.ilp")}, "")
	if code != exitError || !strings.Contains(errOut, "ilprun:") {
		t.Fatalf("exit %d stderr %q", code, errOut)
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ilp")
	if err := os.WriteFile(path, []byte("max x\nst\nc: x <= 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &out, io.Discard); code != exitOK {
		t.Fatalf("exit %d output %q", code, out.String())
	}
	if !strings.Contains(out.String(), "x = 1") {
		t.Fatalf("output %q", out.String())
	}
}

func TestRunPresolveCounters(t *testing.T) {
	// x forced to 1 by its own row: presolve fixes it and reports so.
	model := "min x + y\nst\na: x >= 1\nb: x + y <= 2\n"
	code, out, errOut := runCase(t, []string{"-"}, model)
	if code != exitOK {
		t.Fatalf("exit %d (stderr %q)", code, errOut)
	}
	if !strings.Contains(out, "presolve-fixed:") || !strings.Contains(out, "cuts-added:") {
		t.Fatalf("missing presolve/cut counters in %q", out)
	}
	// -presolve=false -cuts=false restores the raw kernel (same answer).
	code2, out2, _ := runCase(t, []string{"-presolve=false", "-cuts=false", "-"}, model)
	if code2 != exitOK || !strings.Contains(out2, "presolve-fixed: 0") {
		t.Fatalf("raw run exit %d output %q", code2, out2)
	}
	if !strings.Contains(out, "objective: 1") || !strings.Contains(out2, "objective: 1") {
		t.Fatalf("objectives differ: %q vs %q", out, out2)
	}
}
