// Command ilprun solves a 0-1 ILP written in the text format of
// internal/ilp (see ParseText), using the exact branch-and-bound solver or
// the heuristic iterative-improvement solver.
//
// Usage:
//
//	ilprun model.ilp
//	ilprun -solver heur -seed 7 model.ilp
//	ilprun -bounding lp -branching lpfrac model.ilp
//	echo 'max x + y
//	st
//	c: x + y <= 1' | ilprun -
//
// Exit codes (so CI scripts can gate on solver outcomes):
//
//	0  a solution was found (OPTIMAL or FEASIBLE)
//	1  I/O, parse, or validation error
//	2  usage error
//	3  the model is proven INFEASIBLE
//	4  limits stopped the search with no solution (UNKNOWN, e.g. -timeout),
//	   or the heuristic found none
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

// Exit codes of run.
const (
	exitOK         = 0
	exitError      = 1
	exitUsage      = 2
	exitInfeasible = 3
	exitNoSolution = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ilprun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	solver := fs.String("solver", "exact", "exact or heur")
	bounding := fs.String("bounding", "comb", "exact bounding: comb or lp")
	branching := fs.String("branching", "auto", "exact branching: auto, maxobj, constrained, lpfrac, cover")
	seed := fs.Int64("seed", 1, "heuristic seed")
	flips := fs.Int64("flips", 0, "heuristic flip budget (0 = default)")
	timeout := fs.Duration("timeout", 0, "exact time limit (0 = none)")
	workers := fs.Int("workers", 1, "parallel root searchers for the exact solver (1 = serial)")
	presolve := fs.Bool("presolve", true, "run the presolve pass (bound tightening, row/column elimination)")
	cuts := fs.Bool("cuts", true, "separate cover and clique cuts before the search")
	resolves := fs.Int("resolves", 1, "exact solver only: re-solve the model N times through a persistent instance and report the retained-state counters")
	quiet := fs.Bool("quiet", false, "print only status and objective")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return exitUsage
	}

	var r io.Reader
	if fs.Arg(0) == "-" {
		r = stdin
	} else {
		fh, err := os.Open(fs.Arg(0))
		if err != nil {
			return fail(stderr, err)
		}
		defer fh.Close()
		r = fh
	}
	m, err := ilp.ParseText(r)
	if err != nil {
		return fail(stderr, err)
	}
	if err := m.Validate(); err != nil {
		return fail(stderr, err)
	}

	switch *solver {
	case "exact":
		opts := ilp.Options{TimeLimit: *timeout, Workers: *workers, Presolve: *presolve, Cuts: *cuts}
		switch *bounding {
		case "comb":
			opts.Bounding = ilp.CombBound
		case "lp":
			opts.Bounding = ilp.LPBound
		default:
			return fail(stderr, fmt.Errorf("unknown -bounding %q", *bounding))
		}
		switch *branching {
		case "auto", "maxobj":
			opts.Branching = ilp.BranchMaxObj
		case "constrained":
			opts.Branching = ilp.BranchMostConstrained
		case "lpfrac":
			opts.Branching = ilp.BranchLPFractional
		case "cover":
			opts.Branching = ilp.BranchCoverGreedy
		default:
			return fail(stderr, fmt.Errorf("unknown -branching %q", *branching))
		}
		start := time.Now()
		var res ilp.Result
		if *resolves > 1 {
			inst := ilp.NewInstance(m)
			for i := 0; i < *resolves; i++ {
				res = inst.Resolve(opts)
			}
		} else {
			res = ilp.Solve(m, opts)
		}
		fmt.Fprintf(stdout, "status: %s\n", res.Status)
		if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
			fmt.Fprintf(stdout, "objective: %g\n", res.Objective)
			if !*quiet {
				printSolution(stdout, m, res.Solution)
			}
		}
		if !*quiet {
			fmt.Fprintf(stdout, "nodes: %d  propagations: %d  row-scans-saved: %d  runtime: %v\n",
				res.Nodes, res.Propagations, res.RowScansSaved, time.Since(start))
			fmt.Fprintf(stdout, "lp-solves: %d  lp-warm-hits: %d  workers: %d\n",
				res.LPSolves, res.LPWarmHits, res.Workers)
			fmt.Fprintf(stdout, "presolve-fixed: %d  presolve-rows: %d  cuts-added: %d  cut-tightenings: %d\n",
				res.PresolveFixed, res.PresolveRows, res.CutsAdded, res.CutTightenings)
			if *resolves > 1 {
				fmt.Fprintf(stdout, "resolves: %d  instance-reused: %d  rows-delta: %d  reseparated-rows: %d\n",
					*resolves, res.InstanceReused, res.RowsDelta, res.ReseparatedRows)
			}
		}
		switch res.Status {
		case ilp.Optimal, ilp.Feasible:
			return exitOK
		case ilp.Infeasible:
			return exitInfeasible
		default: // Unknown: node/time limits exhausted the search
			return exitNoSolution
		}
	case "heur":
		res := heurilp.Solve(m, heurilp.Options{Seed: *seed, MaxFlips: *flips})
		if !res.Feasible {
			fmt.Fprintln(stdout, "status: NO-SOLUTION")
			return exitNoSolution
		}
		fmt.Fprintln(stdout, "status: FEASIBLE")
		fmt.Fprintf(stdout, "objective: %g\n", res.Objective)
		if !*quiet {
			printSolution(stdout, m, res.Solution)
			fmt.Fprintf(stdout, "flips: %d  runtime: %v\n", res.Flips, res.Runtime)
		}
		return exitOK
	default:
		return fail(stderr, fmt.Errorf("unknown -solver %q", *solver))
	}
}

func printSolution(w io.Writer, m *ilp.Model, sol ilp.Solution) {
	for j := 0; j < m.NumVars(); j++ {
		if sol[j] == 1 {
			fmt.Fprintf(w, "%s = 1\n", m.VarName(j))
		}
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "ilprun:", err)
	return exitError
}
