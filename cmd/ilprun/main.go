// Command ilprun solves a 0-1 ILP written in the text format of
// internal/ilp (see ParseText), using the exact branch-and-bound solver or
// the heuristic iterative-improvement solver.
//
// Usage:
//
//	ilprun model.ilp
//	ilprun -solver heur -seed 7 model.ilp
//	ilprun -bounding lp -branching lpfrac model.ilp
//	echo 'max x + y
//	st
//	c: x + y <= 1' | ilprun -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
)

func main() {
	solver := flag.String("solver", "exact", "exact or heur")
	bounding := flag.String("bounding", "comb", "exact bounding: comb or lp")
	branching := flag.String("branching", "auto", "exact branching: auto, maxobj, constrained, lpfrac, cover")
	seed := flag.Int64("seed", 1, "heuristic seed")
	flips := flag.Int64("flips", 0, "heuristic flip budget (0 = default)")
	timeout := flag.Duration("timeout", 0, "exact time limit (0 = none)")
	workers := flag.Int("workers", 1, "parallel root searchers for the exact solver (1 = serial)")
	quiet := flag.Bool("quiet", false, "print only status and objective")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		fh, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		r = fh
	}
	m, err := ilp.ParseText(r)
	if err != nil {
		fatal(err)
	}
	if err := m.Validate(); err != nil {
		fatal(err)
	}

	switch *solver {
	case "exact":
		opts := ilp.Options{TimeLimit: *timeout, Workers: *workers}
		switch *bounding {
		case "comb":
			opts.Bounding = ilp.CombBound
		case "lp":
			opts.Bounding = ilp.LPBound
		default:
			fatal(fmt.Errorf("unknown -bounding %q", *bounding))
		}
		switch *branching {
		case "auto", "maxobj":
			opts.Branching = ilp.BranchMaxObj
		case "constrained":
			opts.Branching = ilp.BranchMostConstrained
		case "lpfrac":
			opts.Branching = ilp.BranchLPFractional
		case "cover":
			opts.Branching = ilp.BranchCoverGreedy
		default:
			fatal(fmt.Errorf("unknown -branching %q", *branching))
		}
		start := time.Now()
		res := ilp.Solve(m, opts)
		fmt.Printf("status: %s\n", res.Status)
		if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
			fmt.Printf("objective: %g\n", res.Objective)
			if !*quiet {
				printSolution(m, res.Solution)
			}
		}
		if !*quiet {
			fmt.Printf("nodes: %d  propagations: %d  row-scans-saved: %d  runtime: %v\n",
				res.Nodes, res.Propagations, res.RowScansSaved, time.Since(start))
			fmt.Printf("lp-solves: %d  lp-warm-hits: %d  workers: %d\n",
				res.LPSolves, res.LPWarmHits, res.Workers)
		}
	case "heur":
		res := heurilp.Solve(m, heurilp.Options{Seed: *seed, MaxFlips: *flips})
		if !res.Feasible {
			fmt.Println("status: NO-SOLUTION")
			os.Exit(1)
		}
		fmt.Println("status: FEASIBLE")
		fmt.Printf("objective: %g\n", res.Objective)
		if !*quiet {
			printSolution(m, res.Solution)
			fmt.Printf("flips: %d  runtime: %v\n", res.Flips, res.Runtime)
		}
	default:
		fatal(fmt.Errorf("unknown -solver %q", *solver))
	}
}

func printSolution(m *ilp.Model, sol ilp.Solution) {
	for j := 0; j < m.NumVars(); j++ {
		if sol[j] == 1 {
			fmt.Printf("%s = 1\n", m.VarName(j))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ilprun:", err)
	os.Exit(1)
}
