package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotExportedOnly(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "pkg.go", `package pkg

// Public doc.
func Public(a int, b ...string) (int, error) { return 0, nil }

func private() {}

type Exported struct{ X int }

type hidden struct{}

// Method is exported on an exported type.
func (e *Exported) Method() {}

func (h hidden) Hidden() {}

type Alias = Exported

const Answer = 42
const secret = 1

var Visible int
`)
	snap, err := Snapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func Public(a int, b ...string) (int, error)",
		"func (*Exported) Method()",
		"type Exported struct",
		"type Alias = alias",
		"const Answer",
		"var Visible",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
	for _, bad := range []string{"private", "hidden", "Hidden", "secret"} {
		if strings.Contains(snap, bad) {
			t.Errorf("snapshot leaks %q:\n%s", bad, snap)
		}
	}
}

func TestSnapshotIgnoresDocsAndOrder(t *testing.T) {
	a := t.TempDir()
	writeFile(t, a, "x.go", "package p\n\n// doc one\nfunc B() {}\nfunc A() {}\n")
	b := t.TempDir()
	writeFile(t, b, "y.go", "package p\nfunc A() {}\n\n// totally different doc\nfunc B() {}\n")
	sa, err := Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Snapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", sa, sb)
	}
}

func TestDiff(t *testing.T) {
	if d := Diff("func A()\n", "func A()\n"); d != "" {
		t.Fatalf("identical snapshots diff: %q", d)
	}
	d := Diff("func A()\nfunc B()\n", "func B()\nfunc C()\n")
	if !strings.Contains(d, "- func A()") || !strings.Contains(d, "+ func C()") {
		t.Fatalf("diff %q", d)
	}
}

// TestGoldenMatchesRepo is the real gate run locally: the committed
// snapshot must match the current root-package API.
func TestGoldenMatchesRepo(t *testing.T) {
	root := "../.."
	snap, err := Snapshot(root)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(root, "api", "ilpec.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(string(want), snap); d != "" {
		t.Fatalf("api/ilpec.txt is stale:\n%s\nrun: go run ./cmd/apicheck -dir . -golden api/ilpec.txt -update", d)
	}
}
