// Command apicheck guards the public API surface: it extracts every
// exported declaration of a package directory into a canonical sorted
// snapshot and diffs it against a committed golden file, so unintended
// public-API breaks fail CI while intentional changes are a one-line
// -update away.
//
// Usage:
//
//	apicheck -dir . -golden api/ilpec.txt           # verify (CI)
//	apicheck -dir . -golden api/ilpec.txt -update   # refresh the golden
//
// The snapshot lists one exported declaration per line: functions and
// methods with their full signatures, types with their kind (alias,
// struct, interface, ...), and exported consts/vars. Doc comments and
// unexported details never enter the snapshot, so documentation-only
// edits cannot break the check.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("apicheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "package directory to snapshot")
	golden := fs.String("golden", "", "golden snapshot file")
	update := fs.Bool("update", false, "rewrite the golden file instead of checking")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *golden == "" {
		fmt.Fprintln(stderr, "apicheck: -golden is required")
		return 2
	}
	snapshot, err := Snapshot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "apicheck:", err)
		return 1
	}
	if *update {
		if err := os.WriteFile(*golden, []byte(snapshot), 0o644); err != nil {
			fmt.Fprintln(stderr, "apicheck:", err)
			return 1
		}
		fmt.Fprintf(stdout, "apicheck: wrote %s (%d lines)\n", *golden, strings.Count(snapshot, "\n"))
		return 0
	}
	want, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintln(stderr, "apicheck:", err)
		return 1
	}
	diff := Diff(string(want), snapshot)
	if diff == "" {
		fmt.Fprintf(stdout, "apicheck: %s is up to date\n", *golden)
		return 0
	}
	fmt.Fprintf(stderr, "apicheck: public API of %s differs from %s:\n%s", *dir, *golden, diff)
	fmt.Fprintf(stderr, "apicheck: intentional? run: go run ./cmd/apicheck -dir %s -golden %s -update\n", *dir, *golden)
	return 1
}

// Snapshot renders the exported API of the package in dir, one sorted
// declaration per line.
func Snapshot(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// declLines renders the exported entries of one top-level declaration.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) == 1 {
			t := typeString(fset, d.Recv.List[0].Type)
			base := strings.TrimPrefix(t, "*")
			if !ast.IsExported(strings.TrimLeft(base, "*")) {
				return nil // method on an unexported type
			}
			recv = "(" + t + ") "
		}
		out = append(out, "func "+recv+d.Name.Name+strings.TrimPrefix(typeString(fset, d.Type), "func"))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				kind := typeKind(s)
				out = append(out, "type "+s.Name.Name+" "+kind)
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					what := "var"
					if d.Tok == token.CONST {
						what = "const"
					}
					line := what + " " + name.Name
					if s.Type != nil {
						line += " " + typeString(fset, s.Type)
					}
					out = append(out, line)
				}
			}
		}
	}
	return out
}

// typeKind classifies a type spec: "= <target>" for aliases, else the
// syntactic kind of the underlying type.
func typeKind(s *ast.TypeSpec) string {
	if s.Assign != 0 {
		return "= alias"
	}
	switch s.Type.(type) {
	case *ast.StructType:
		return "struct"
	case *ast.InterfaceType:
		return "interface"
	case *ast.FuncType:
		return "func"
	case *ast.MapType:
		return "map"
	case *ast.ArrayType:
		return "slice-or-array"
	case *ast.ChanType:
		return "chan"
	default:
		return "defined"
	}
}

func typeString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	// Collapse whitespace so formatting never shapes the snapshot.
	return strings.Join(strings.Fields(buf.String()), " ")
}

// Diff reports the line-level additions/removals from want to got
// (empty when identical).
func Diff(want, got string) string {
	wantSet := toSet(want)
	gotSet := toSet(got)
	var sb strings.Builder
	for _, l := range sortedKeys(wantSet) {
		if !gotSet[l] {
			fmt.Fprintf(&sb, "  - %s\n", l)
		}
	}
	for _, l := range sortedKeys(gotSet) {
		if !wantSet[l] {
			fmt.Fprintf(&sb, "  + %s\n", l)
		}
	}
	return sb.String()
}

func toSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimRight(l, " \t"); l != "" {
			set[l] = true
		}
	}
	return set
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
