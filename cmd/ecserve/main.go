// Command ecserve is the EC session server: it exposes the long-lived
// engineering-change sessions of internal/service over HTTP/JSON, for
// every registered problem domain (CNF/set-cover, graph coloring,
// scheduling, min-cut partitioning, and custom adapters).
//
// Usage:
//
//	ecserve -addr :8080
//	ecserve -addr :8080 -strategy preserving -workers 8 -cache 512 -timeout 30s
//	ecserve -addr :8080 -data-dir /var/lib/ecserve -snapshot-every 64 \
//	        -max-live-sessions 1024 -session-ttl 1h
//	ecserve -addr :8080 -max-pending 1024 -max-backlog 32 -request-timeout 5s
//
// With -data-dir, sessions are durable: every queued change batch is
// journaled (fsync'd, CRC-framed) and snapshots are cut periodically, so
// a restart or crash recovers every session — see the README
// "Persistence" section. -max-live-sessions bounds memory (LRU sessions
// are evicted to disk and rehydrated on touch) and -session-ttl
// snapshots-and-closes idle sessions.
//
// The server is failure-hardened (see the README "Resilience" section):
// transient store faults are retried with capped jittered backoff
// (-store-retries), sessions whose persistence keeps failing are
// quarantined to memory-only service and periodically healed
// (-quarantine-after, -reprobe-interval), and overload is shed at
// admission (-max-pending → 429, -max-backlog → 503, -request-timeout).
// -fault-plan arms deterministic store fault injection for resilience
// testing.
//
// Endpoints (see internal/service.NewHandler and the README walkthrough):
//
//	POST   /v1/sessions              create a session ("domain" + "problem",
//	                                 or the legacy DIMACS/clause-list shape;
//	                                 optional "id" for idempotent creates)
//	GET    /v1/sessions              list session ids (?limit= and ?after=
//	                                 page; "next" is the cursor)
//	GET    /v1/sessions/{id}         session info (rehydrates if evicted)
//	DELETE /v1/sessions/{id}         close a session (memory and store)
//	POST   /v1/sessions/{id}/changes queue a change batch (domain wire form)
//	POST   /v1/sessions/{id}/solve   drain the batch in one EC pass
//	GET    /v1/sessions/{id}/flex    flexibility report
//	GET    /v1/domains               registered domain names
//	GET    /v1/metrics               service counters
//	GET    /metrics                  Prometheus text exposition (?format=json)
//	GET    /v1/debug/traces          recent slow-request span trees
//	GET    /healthz                  liveness probe (process is up)
//	GET    /readyz                   readiness probe (503 while draining,
//	                                 store-quarantined, or heartbeat lost)
//
// Observability (see the README "Observability" section): ?trace=1 on
// any request returns its span tree, -slow-trace tunes the
// /v1/debug/traces ring, -request-log emits a structured line per
// request, and -debug-addr serves net/http/pprof on a separate
// (private) listener.
//
// Clustering (see the README "Clustering" section): -cluster -node-id n1
// joins a fleet sharing one -data-dir store. Sessions are owned via
// store-fenced leases, auto ids are node-salted, proven solves are
// published to a fleet-wide cache, and cmd/ecrouter consistent-hashes
// clients onto the fleet. On SIGTERM the node flips /readyz to 503
// (draining), finishes in-flight work, releases its leases, and
// deregisters — a peer rehydrates its sessions from the shared store.
//
// Client errors return HTTP 400 with a structured body
// {"error": {"code": "...", "message": "..."}} — e.g. code
// "unknown_domain" or "unknown_strategy".
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ilpec/internal/cluster"
	"ilpec/internal/core"
	"ilpec/internal/fault"
	"ilpec/internal/ilp"
	"ilpec/internal/obs"
	"ilpec/internal/service"
	"ilpec/internal/store"
)

// config carries the parsed command line.
type config struct {
	addr        string
	strategy    core.Strategy
	workers     int
	solverWork  int
	cacheSize   int
	maxSessions int
	timeLimit   time.Duration
	drain       time.Duration
	presolve    bool
	cuts        bool
	instance    bool
	// Persistence (empty dataDir = memory-only, nothing survives exit).
	dataDir       string
	snapshotEvery int
	maxLive       int
	sessionTTL    time.Duration
	// Resilience (see the README "Resilience" section).
	storeRetries    int
	quarantineAfter int
	reprobeInterval time.Duration
	maxPending      int
	maxBacklog      int
	requestTimeout  time.Duration
	// Fault injection (testing only; needs -data-dir).
	faultPlan *fault.Plan
	// Clustering (needs -data-dir; see the README "Clustering" section).
	clusterMode bool
	nodeID      string
	advertise   string
	heartbeat   time.Duration
	leaseTTL    time.Duration
	// Observability (see the README "Observability" section).
	debugAddr  string
	slowTrace  time.Duration
	requestLog bool
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "ecserve:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, log.New(os.Stderr, "ecserve: ", log.LstdFlags), nil); err != nil {
		fmt.Fprintln(os.Stderr, "ecserve:", err)
		os.Exit(1)
	}
}

func parseFlags(args []string, errOut io.Writer) (config, error) {
	fs := flag.NewFlagSet("ecserve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	addr := fs.String("addr", ":8080", "listen address")
	strategy := fs.String("strategy", "fast", "default re-solve strategy: fast, preserving, or replan")
	workers := fs.Int("workers", 0, "executor pool size (0 = GOMAXPROCS)")
	solverWorkers := fs.Int("solver-workers", 1, "parallel root searchers inside each solve")
	cache := fs.Int("cache", 256, "solve-cache entries")
	maxSessions := fs.Int("max-sessions", 4096, "live session limit")
	timeout := fs.Duration("timeout", 30*time.Second, "per-solve time limit (0 = none)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain budget")
	presolve := fs.Bool("presolve", true, "run the solver's presolve pass on every solve")
	cuts := fs.Bool("cuts", true, "separate cover/clique cuts, retained per session across re-solves")
	instance := fs.Bool("instance", true, "serve sessions through persistent kernel instances (incremental delta re-solves); false = scratch re-encode per solve")
	dataDir := fs.String("data-dir", "", "durable session store directory (empty = in-memory only)")
	snapshotEvery := fs.Int("snapshot-every", 64, "journal records per session between compaction snapshots")
	maxLive := fs.Int("max-live-sessions", 0, "in-memory session bound; beyond it LRU sessions are evicted to the store (0 = no eviction; needs -data-dir)")
	sessionTTL := fs.Duration("session-ttl", 0, "idle sessions are snapshotted-and-closed after this (0 = never)")
	storeRetries := fs.Int("store-retries", 0, "attempts per transient store operation before quarantine bookkeeping (0 = default 4, 1 = no retries)")
	quarantineAfter := fs.Int("quarantine-after", 0, "exhausted-retry store failures before a session degrades to memory-only service (0 = default 3)")
	reprobeInterval := fs.Duration("reprobe-interval", 0, "cadence for re-probing the store to heal quarantined sessions (0 = default 5s, negative = never)")
	maxPending := fs.Int("max-pending", 0, "per-session queued-change bound; beyond it POST changes returns 429 (0 = default 4096, negative = unbounded)")
	maxBacklog := fs.Int("max-backlog", 0, "solve jobs waiting beyond the worker pool; beyond it POST solve returns 503 (0 = default 8x workers, negative = unbounded)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request solve deadline, propagated into the solver (0 = none)")
	faultPlan := fs.String("fault-plan", "", "inject deterministic store faults, e.g. \"append:error:p=0.1;snapshot:enospc:nth=2\" (testing only; needs -data-dir)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for probabilistic -fault-plan triggers")
	clusterMode := fs.Bool("cluster", false, "join the fleet sharing -data-dir: heartbeat membership, lease-owned sessions, fleet solve cache (needs -node-id)")
	nodeID := fs.String("node-id", "", "stable unique cluster node id, e.g. n1 (required with -cluster)")
	advertise := fs.String("advertise", "", "base URL peers and routers reach this node at (default http://<bound addr>)")
	heartbeat := fs.Duration("heartbeat-interval", 0, "cluster heartbeat cadence (0 = default 1s; TTL is 3x)")
	leaseTTL := fs.Duration("lease-ttl", 0, "session ownership lease lifetime; a dead node's sessions move after this (0 = default 5s)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof profiling on this address (empty = off; keep it private)")
	slowTrace := fs.Duration("slow-trace", 0, "requests at least this slow are retained at /v1/debug/traces (0 = default 250ms)")
	requestLog := fs.Bool("request-log", false, "log one structured line per HTTP request (request id, route, status, duration)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if *maxLive > 0 && *dataDir == "" {
		return config{}, fmt.Errorf("-max-live-sessions needs -data-dir (evicted sessions must have a store to land in)")
	}
	if *faultPlan != "" && *dataDir == "" {
		return config{}, fmt.Errorf("-fault-plan needs -data-dir (faults are injected into the durable store)")
	}
	if *clusterMode {
		if *dataDir == "" {
			return config{}, fmt.Errorf("-cluster needs -data-dir (the fleet coordinates through the shared store)")
		}
		if *nodeID == "" {
			return config{}, fmt.Errorf("-cluster needs -node-id (a stable unique name for this node)")
		}
	} else if *nodeID != "" {
		return config{}, fmt.Errorf("-node-id needs -cluster")
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := config{
		addr:            *addr,
		workers:         *workers,
		solverWork:      *solverWorkers,
		cacheSize:       *cache,
		maxSessions:     *maxSessions,
		timeLimit:       *timeout,
		drain:           *drain,
		presolve:        *presolve,
		cuts:            *cuts,
		instance:        *instance,
		dataDir:         *dataDir,
		snapshotEvery:   *snapshotEvery,
		maxLive:         *maxLive,
		sessionTTL:      *sessionTTL,
		storeRetries:    *storeRetries,
		quarantineAfter: *quarantineAfter,
		reprobeInterval: *reprobeInterval,
		maxPending:      *maxPending,
		maxBacklog:      *maxBacklog,
		requestTimeout:  *requestTimeout,
		clusterMode:     *clusterMode,
		nodeID:          *nodeID,
		advertise:       *advertise,
		heartbeat:       *heartbeat,
		leaseTTL:        *leaseTTL,
		debugAddr:       *debugAddr,
		slowTrace:       *slowTrace,
		requestLog:      *requestLog,
	}
	strat, err := service.ParseStrategy(*strategy)
	if err != nil {
		return config{}, fmt.Errorf("-strategy: %w", err)
	}
	cfg.strategy = strat
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultSeed, *faultPlan)
		if err != nil {
			return config{}, fmt.Errorf("-fault-plan: %w", err)
		}
		cfg.faultPlan = plan
	}
	return cfg, nil
}

// serveDebug exposes net/http/pprof on its own listener — kept off the
// serving address so profiling endpoints are never reachable through
// the public port or the router. The returned stop closes the listener.
func serveDebug(addr string, logger *log.Logger) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // closed via stop
	logger.Printf("pprof profiling on http://%s/debug/pprof/", ln.Addr())
	return func() { srv.Close() }, nil
}

// advertiseURL resolves the membership address peers dial: the -advertise
// override verbatim, else the bound address with unspecified hosts
// (":8080", "[::]:8080") rewritten to loopback — good for single-host
// fleets; multi-host deployments must set -advertise.
func advertiseURL(override, bound string) string {
	if override != "" {
		return override
	}
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return "http://" + bound
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// serve runs the server until ctx is cancelled, then drains. ready, when
// non-nil, receives the bound address once the listener is up (used by
// tests and useful with -addr :0).
func serve(ctx context.Context, cfg config, logger *log.Logger, ready func(addr string)) error {
	var st store.Store
	if cfg.dataDir != "" {
		var fileStore *store.File
		var err error
		if cfg.clusterMode {
			// Shared mode: peers read and CAS-append concurrently, so the
			// store re-reads durable state instead of trusting caches.
			fileStore, err = store.NewSharedFile(cfg.dataDir)
		} else {
			fileStore, err = store.NewFile(cfg.dataDir)
		}
		if err != nil {
			return err
		}
		st = fileStore
		logger.Printf("durable sessions in %s (snapshot-every=%d max-live=%d ttl=%v)",
			cfg.dataDir, cfg.snapshotEvery, cfg.maxLive, cfg.sessionTTL)
		if cfg.faultPlan != nil {
			st = store.NewFaulty(st, cfg.faultPlan)
			logger.Printf("WARNING: fault injection armed — store faults will be injected deterministically")
		}
	}

	// The listener comes up before the cluster node so the advertised URL
	// can default to the actual bound address (-addr :0 included).
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// One registry for the whole process: the cluster node's lease and
	// heartbeat instruments land next to the service's request and solve
	// instruments, all served by GET /metrics.
	reg := obs.NewRegistry()
	var node *cluster.Node
	if cfg.clusterMode {
		node, err = cluster.NewNode(cluster.Config{
			ID:                cfg.nodeID,
			Addr:              advertiseURL(cfg.advertise, ln.Addr().String()),
			Store:             st,
			HeartbeatInterval: cfg.heartbeat,
			LeaseTTL:          cfg.leaseTTL,
			Obs:               reg,
		})
		if err != nil {
			ln.Close()
			return err
		}
	}
	var reqLog *slog.Logger
	if cfg.requestLog {
		reqLog = slog.New(slog.NewTextHandler(logger.Writer(), nil))
	}
	svc := service.New(service.Options{
		Solve: ilp.Options{
			TimeLimit: cfg.timeLimit,
			Workers:   cfg.solverWork,
			Presolve:  cfg.presolve,
			Cuts:      cfg.cuts,
		},
		Strategy:    cfg.strategy,
		CacheSize:   cfg.cacheSize,
		Workers:     cfg.workers,
		MaxSessions: cfg.maxSessions,
		// The service owns the store: Close flushes final snapshots and
		// closes it, which is what makes the drain below durable.
		Store:              st,
		SnapshotEvery:      cfg.snapshotEvery,
		MaxLiveSessions:    cfg.maxLive,
		SessionTTL:         cfg.sessionTTL,
		StoreRetry:         service.RetryPolicy{Attempts: cfg.storeRetries},
		QuarantineAfter:    cfg.quarantineAfter,
		ReprobeInterval:    cfg.reprobeInterval,
		MaxPending:         cfg.maxPending,
		MaxBacklog:         cfg.maxBacklog,
		RequestTimeout:     cfg.requestTimeout,
		DisableInstance:    !cfg.instance,
		Cluster:            node,
		Obs:                reg,
		RequestLog:         reqLog,
		SlowTraceThreshold: cfg.slowTrace,
	})
	defer svc.Close()
	if cfg.debugAddr != "" {
		stopDebug, err := serveDebug(cfg.debugAddr, logger)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		defer stopDebug()
	}
	if st != nil {
		if m := svc.Metrics(); m.Recoveries > 0 {
			logger.Printf("recovered %d persisted sessions", m.Recoveries)
		}
	}
	if node != nil {
		// Synchronous first heartbeat: the node is in the membership (and
		// on every router's ring) before the first request is served.
		if err := node.Start(); err != nil {
			ln.Close()
			return fmt.Errorf("cluster join: %w", err)
		}
		// LIFO with defer svc.Close(): the heartbeat deregisters first
		// (routers stop placing here), then Close releases the leases.
		defer node.Stop()
		logger.Printf("cluster node %s advertising %s (lease-ttl=%v)",
			node.ID(), node.Addr(), node.LeaseTTL())
	}

	srv := &http.Server{
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Printf("listening on %s (strategy=%s workers=%d cache=%d)",
		ln.Addr(), cfg.strategy, cfg.workers, cfg.cacheSize)
	if ready != nil {
		ready(ln.Addr().String())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (drain %v)", cfg.drain)
	// Flip /readyz to 503 first: routers stop placing new work here while
	// the in-flight requests below drain.
	svc.StartDraining()
	//ecvet:ignore ctxflow ctx is already cancelled here; the drain needs a fresh deadline
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// The HTTP drain is done; flush the session store before reporting.
	// Every journal append was already fsync'd at accept time — this cuts
	// the final compaction snapshots and closes the store, so a restart
	// recovers every session without journal replay. (The deferred Close
	// is then a no-op.)
	svc.Close()
	m := svc.Metrics()
	logger.Printf("served %d sessions, %d solves (%d cache hits)",
		m.SessionsCreated, m.Solves, m.CacheHits)
	if cfg.dataDir != "" {
		logger.Printf("persisted state flushed (%d journal appends, %d snapshots)",
			m.JournalAppends, m.SnapshotsWritten)
		if m.Quarantines > 0 {
			logger.Printf("store trouble seen: %d quarantines (%d healed), %d retries, %d snapshot failures",
				m.Quarantines, m.QuarantineHeals, m.JournalRetries, m.SnapshotFailures)
		}
	}
	return nil
}
