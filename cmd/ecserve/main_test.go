package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ilpec/internal/core"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", ":0", "-strategy", "preserving", "-timeout", "5s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":0" || cfg.strategy != core.PreservingEC || cfg.timeLimit != 5*time.Second {
		t.Fatalf("cfg %+v", cfg)
	}
	if !cfg.presolve || !cfg.cuts {
		t.Fatalf("presolve/cuts should default on: %+v", cfg)
	}
	cfg2, err := parseFlags([]string{"-presolve=false", "-cuts=false"}, io.Discard)
	if err != nil || cfg2.presolve || cfg2.cuts {
		t.Fatalf("presolve/cuts flags not honored: %+v (%v)", cfg2, err)
	}
	if _, err := parseFlags([]string{"-strategy", "psychic"}, io.Discard); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("stray argument accepted")
	}
	cfg3, err := parseFlags([]string{
		"-data-dir", "/tmp/x", "-snapshot-every", "8",
		"-max-live-sessions", "2", "-session-ttl", "90s",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg3.dataDir != "/tmp/x" || cfg3.snapshotEvery != 8 || cfg3.maxLive != 2 || cfg3.sessionTTL != 90*time.Second {
		t.Fatalf("persistence flags not honored: %+v", cfg3)
	}
	if cfg.dataDir != "" || cfg.snapshotEvery != 64 || cfg.sessionTTL != 0 {
		t.Fatalf("persistence defaults wrong: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-max-live-sessions", "2"}, io.Discard); err == nil {
		t.Fatal("-max-live-sessions without -data-dir accepted")
	}
}

// TestServeLifecycle boots the real server on a random port, drives one
// session through the HTTP API, and checks the graceful shutdown path.
func TestServeLifecycle(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-drain", "2s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, cfg, log.New(io.Discard, "", 0), func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"clauses": [[1,2],[-1,3]]}`
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || json.Unmarshal(raw, &info) != nil || info.ID == "" {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/solve", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// startTestServer boots the real server on a random port and returns its
// base URL; extra flags ride along after the defaults.
func startTestServer(t *testing.T, extraArgs ...string) string {
	t.Helper()
	base, _ := startStoppableServer(t, extraArgs...)
	return base
}

// startStoppableServer is startTestServer plus an explicit stop function
// (graceful shutdown, waits for exit) for restart scenarios.
func startStoppableServer(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "2s"}, extraArgs...)
	cfg, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, cfg, log.New(io.Discard, "", 0), func(addr string) { addrCh <- addr })
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("shutdown error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}
	t.Cleanup(stop)
	select {
	case addr := <-addrCh:
		return "http://" + addr, stop
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	return "", nil
}

// postJSON posts a JSON body and returns the status code and the decoded
// structured error (zero-valued on success responses).
func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestServeClientErrorPaths pins that client mistakes — unknown domain or
// strategy names, malformed problems, bad change kinds — come back as
// HTTP 400 (never 500) with the structured {"error":{code,message}} body.
func TestServeClientErrorPaths(t *testing.T) {
	base := startTestServer(t)
	decode := func(raw string) (code, message string) {
		var eb struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal([]byte(raw), &eb); err != nil {
			t.Fatalf("unstructured error body %q: %v", raw, err)
		}
		return eb.Error.Code, eb.Error.Message
	}

	for name, tc := range map[string]struct {
		body     string
		wantCode string
	}{
		"unknown domain":   {`{"domain": "quantum", "problem": {}}`, "unknown_domain"},
		"unknown strategy": {`{"clauses": [[1,2]], "strategy": "psychic"}`, "unknown_strategy"},
		"bad problem":      {`{"domain": "coloring", "problem": {"vertices": 3, "k": 0}}`, "bad_problem"},
		"missing problem":  {`{"domain": "sched"}`, "bad_problem"},
	} {
		t.Run(name, func(t *testing.T) {
			status, raw := postJSON(t, base+"/v1/sessions", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", status, raw)
			}
			code, message := decode(raw)
			if code != tc.wantCode || message == "" {
				t.Fatalf("error %q/%q, want code %q", code, message, tc.wantCode)
			}
		})
	}

	// Bad change kind on a live session.
	status, raw := postJSON(t, base+"/v1/sessions", `{"domain": "partition", "problem": {"vertices": 4, "blocks": 2, "edges": [[1,2]]}}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, raw)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil || info.ID == "" {
		t.Fatalf("create info %q: %v", raw, err)
	}
	status, raw = postJSON(t, base+"/v1/sessions/"+info.ID+"/changes", `{"changes": [{"kind": "warp"}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad change: %d %s", status, raw)
	}
	if code, _ := decode(raw); code != "bad_change" {
		t.Fatalf("error code %q, want bad_change", code)
	}
}

// TestServePartitionEndToEnd drives the new partitioning domain through
// the real server: create by domain name, initial solve, netlist change
// batch, fast-EC re-solve.
func TestServePartitionEndToEnd(t *testing.T) {
	base := startTestServer(t)
	status, raw := postJSON(t, base+"/v1/sessions",
		`{"domain": "partition", "problem": {"vertices": 6, "blocks": 2, "edges": [[1,2],[2,3],[4,5],[5,6],[3,4]]}}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, raw)
	}
	var info struct {
		ID     string `json:"id"`
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil || info.Domain != "partition" {
		t.Fatalf("create info %q: %v", raw, err)
	}
	sessURL := base + "/v1/sessions/" + info.ID
	var solve struct {
		Status   string `json:"status"`
		Batched  int    `json:"batched"`
		Solution []int  `json:"solution"`
	}
	status, raw = postJSON(t, sessURL+"/solve", "")
	if status != http.StatusOK || json.Unmarshal([]byte(raw), &solve) != nil {
		t.Fatalf("solve: %d %s", status, raw)
	}
	if solve.Status != "initial" || len(solve.Solution) != 6 {
		t.Fatalf("initial solve %+v", solve)
	}
	status, raw = postJSON(t, sessURL+"/changes",
		`{"changes": [{"kind": "add-vertex"}, {"kind": "set-bounds", "max": 4}, {"kind": "add-edge", "u": 7, "v": 1, "weight": 2}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("changes: %d %s", status, raw)
	}
	status, raw = postJSON(t, sessURL+"/solve", "")
	if status != http.StatusOK || json.Unmarshal([]byte(raw), &solve) != nil {
		t.Fatalf("batch solve: %d %s", status, raw)
	}
	if solve.Status != "fast" || solve.Batched != 3 || len(solve.Solution) != 7 {
		t.Fatalf("batch solve %+v", solve)
	}
}

// TestServeDomainsEndpoint pins that the server advertises all built-in
// domains.
func TestServeDomainsEndpoint(t *testing.T) {
	base := startTestServer(t)
	resp, err := http.Get(base + "/v1/domains")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("domains: %d %s", resp.StatusCode, raw)
	}
	var out struct {
		Domains []string `json:"domains"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cnf": true, "coloring": true, "sched": true, "partition": true}
	for _, d := range out.Domains {
		delete(want, d)
	}
	if len(want) != 0 {
		t.Fatalf("missing domains %v in %s", want, raw)
	}
}

// TestServeMetricsCounters: /v1/metrics reports the presolve/cut-pool
// counters the PR-4 solver layers feed (the server runs with presolve and
// cuts on by default).
func TestServeMetricsCounters(t *testing.T) {
	base := startTestServer(t)
	body := `{"clauses": [[1,2],[-1,3],[2,3]]}`
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if json.Unmarshal(raw, &info) != nil || info.ID == "" {
		t.Fatalf("create: %s", raw)
	}
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/solve", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics body %s: %v", raw, err)
	}
	for _, k := range []string{
		"presolve_fixed", "presolve_rows", "cuts_added", "cuts_reused",
		"cut_tightenings", "truncated_solves",
	} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metrics missing %q: %s", k, raw)
		}
	}
}

// TestServeRestartSurvivesSession is the subsystem acceptance test: a
// session created, changed, and solved against a file-backed store
// survives a full process restart — after recovery GET /v1/sessions lists
// it and a subsequent solve returns the identical solution (same
// objective, same fingerprint).
func TestServeRestartSurvivesSession(t *testing.T) {
	dataDir := t.TempDir()
	base, stop := startStoppableServer(t, "-data-dir", dataDir)

	status, raw := postJSON(t, base+"/v1/sessions", `{"clauses": [[1,2],[-1,3],[2,4],[-3,-4,5],[5,6]]}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, raw)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil || info.ID == "" {
		t.Fatalf("create info %q: %v", raw, err)
	}
	sessURL := "/v1/sessions/" + info.ID
	if status, raw = postJSON(t, base+sessURL+"/solve", ""); status != http.StatusOK {
		t.Fatalf("initial solve: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+sessURL+"/changes",
		`{"changes": [{"kind": "add-clause", "lits": [-2, 3]}, {"kind": "add-variable"}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("changes: %d %s", status, raw)
	}
	type solveBody struct {
		Status    string `json:"status"`
		Solution  []int  `json:"solution"`
		DontCares int    `json:"dont_cares"`
	}
	var before solveBody
	status, raw = postJSON(t, base+sessURL+"/solve", "")
	if status != http.StatusOK || json.Unmarshal([]byte(raw), &before) != nil {
		t.Fatalf("batch solve: %d %s", status, raw)
	}

	// Full process restart: graceful stop, fresh server over the same dir.
	stop()
	base2, _ := startStoppableServer(t, "-data-dir", dataDir)

	resp, err := http.Get(base2 + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	listRaw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Sessions []string `json:"sessions"`
		Live     []string `json:"live"`
	}
	if err := json.Unmarshal(listRaw, &list); err != nil {
		t.Fatalf("list body %s: %v", listRaw, err)
	}
	found := false
	for _, id := range list.Sessions {
		found = found || id == info.ID
	}
	if !found {
		t.Fatalf("recovered listing %s misses %s", listRaw, info.ID)
	}
	if len(list.Live) != 0 {
		t.Fatalf("sessions live before first touch: %s", listRaw)
	}

	// The recovered session answers with the same solution: equal
	// rendered literals means equal objective AND equal fingerprint.
	var after solveBody
	status, raw = postJSON(t, base2+sessURL+"/solve", "")
	if status != http.StatusOK || json.Unmarshal([]byte(raw), &after) != nil {
		t.Fatalf("post-restart solve: %d %s", status, raw)
	}
	if after.Status != "noop" {
		t.Fatalf("post-restart solve status %q, want noop", after.Status)
	}
	if !reflect.DeepEqual(after.Solution, before.Solution) || after.DontCares != before.DontCares {
		t.Fatalf("solution diverged across restart:\n before %v (%d dc)\n after  %v (%d dc)",
			before.Solution, before.DontCares, after.Solution, after.DontCares)
	}

	// The recovered session keeps absorbing changes.
	status, raw = postJSON(t, base2+sessURL+"/changes", `{"changes": [{"kind": "add-clause", "lits": [1, 7]}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("post-restart changes: %d %s", status, raw)
	}
	if status, raw = postJSON(t, base2+sessURL+"/solve", ""); status != http.StatusOK {
		t.Fatalf("post-restart batch solve: %d %s", status, raw)
	}

	// DELETE drops it from the store too.
	req, _ := http.NewRequest(http.MethodDelete, base2+sessURL, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dataDir, info.ID)); !os.IsNotExist(err) {
		t.Fatalf("session directory survived DELETE: %v", err)
	}
}

// TestServeShutdownFlushesStore pins the graceful-drain satellite: by the
// time the process exits, every session's state is compacted into its
// snapshot (journal drained), so the files alone carry the session.
func TestServeShutdownFlushesStore(t *testing.T) {
	dataDir := t.TempDir()
	base, stop := startStoppableServer(t, "-data-dir", dataDir, "-snapshot-every", "1000000")

	status, raw := postJSON(t, base+"/v1/sessions", `{"clauses": [[1,2],[-1,3]]}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, raw)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil {
		t.Fatal(err)
	}
	if status, raw = postJSON(t, base+"/v1/sessions/"+info.ID+"/solve", ""); status != http.StatusOK {
		t.Fatalf("solve: %d %s", status, raw)
	}
	status, raw = postJSON(t, base+"/v1/sessions/"+info.ID+"/changes", `{"changes": [{"kind": "add-variable"}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("changes: %d %s", status, raw)
	}
	stop()

	// With -snapshot-every effectively off, only the shutdown flush can
	// have compacted the journal into the snapshot.
	snapRaw, err := os.ReadFile(filepath.Join(dataDir, info.ID, "snapshot.json"))
	if err != nil {
		t.Fatalf("snapshot not flushed: %v", err)
	}
	var snap struct {
		Solution json.RawMessage   `json:"solution"`
		Pending  []json.RawMessage `json:"pending"`
		Seq      uint64            `json:"seq"`
	}
	if err := json.Unmarshal(snapRaw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Solution) == 0 || snap.Seq == 0 || len(snap.Pending) != 1 {
		t.Fatalf("flushed snapshot incomplete: %s", snapRaw)
	}
	journal, err := os.ReadFile(filepath.Join(dataDir, info.ID, "journal.jsonl"))
	if err != nil || len(journal) != 0 {
		t.Fatalf("journal not drained at shutdown: %q (%v)", journal, err)
	}
}

// TestServeEvictionOverHTTP: with -max-live-sessions 1 the server keeps
// serving every session while only one lives in memory.
func TestServeEvictionOverHTTP(t *testing.T) {
	base := startTestServer(t, "-data-dir", t.TempDir(), "-max-live-sessions", "1")
	var ids []string
	for i := 0; i < 3; i++ {
		status, raw := postJSON(t, base+"/v1/sessions", `{"clauses": [[1,2],[-1,3]]}`)
		if status != http.StatusCreated {
			t.Fatalf("create %d: %d %s", i, status, raw)
		}
		var info struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(raw), &info); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		if status, raw = postJSON(t, base+"/v1/sessions/"+info.ID+"/solve", ""); status != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, status, raw)
		}
	}
	// Every session still answers (rehydrating as needed) ...
	for _, id := range ids {
		if status, raw := postJSON(t, base+"/v1/sessions/"+id+"/solve", ""); status != http.StatusOK {
			t.Fatalf("evicted session %s unreachable: %d %s", id, status, raw)
		}
	}
	// ... while metrics show the eviction/rehydration churn and a bounded
	// live set.
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m struct {
		SessionsLive int   `json:"sessions_live"`
		Evictions    int64 `json:"evictions"`
		Rehydrations int64 `json:"rehydrations"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.SessionsLive != 1 || m.Evictions < 2 || m.Rehydrations < 2 {
		t.Fatalf("eviction metrics %s", raw)
	}
}

func TestParseResilienceFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-store-retries", "2", "-quarantine-after", "1", "-reprobe-interval", "250ms",
		"-max-pending", "16", "-max-backlog", "4", "-request-timeout", "3s",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.storeRetries != 2 || cfg.quarantineAfter != 1 || cfg.reprobeInterval != 250*time.Millisecond ||
		cfg.maxPending != 16 || cfg.maxBacklog != 4 || cfg.requestTimeout != 3*time.Second {
		t.Fatalf("resilience flags not honored: %+v", cfg)
	}
	if cfg.faultPlan != nil {
		t.Fatal("fault plan armed without -fault-plan")
	}
	if _, err := parseFlags([]string{"-fault-plan", "append:error:every=1"}, io.Discard); err == nil {
		t.Fatal("-fault-plan without -data-dir accepted")
	}
	if _, err := parseFlags([]string{"-data-dir", "/tmp/x", "-fault-plan", "append:bogus:every=1"}, io.Discard); err == nil {
		t.Fatal("bad -fault-plan spec accepted")
	}
	cfg2, err := parseFlags([]string{"-data-dir", "/tmp/x", "-fault-plan", "append:error:p=0.5", "-fault-seed", "7"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.faultPlan == nil {
		t.Fatal("fault plan not armed")
	}
}

// TestServeFaultPlanDegradedServing boots the server with -fault-plan
// making every store write fail: sessions must still be created and
// solved (memory-only), with the quarantine visible in the session list
// and the metrics — the CLI surface of the chaos suite's total-outage
// scenario.
func TestServeFaultPlanDegradedServing(t *testing.T) {
	base := startTestServer(t,
		"-data-dir", filepath.Join(t.TempDir(), "data"),
		"-fault-plan", "append:error:every=1;snapshot:error:every=1",
		"-quarantine-after", "1", "-reprobe-interval", "-1s",
	)
	status, raw := postJSON(t, base+"/v1/sessions", `{"clauses": [[1,2],[-1,3]]}`)
	if status != http.StatusCreated {
		t.Fatalf("create with store down: %d %s", status, raw)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil || info.ID == "" {
		t.Fatalf("create body: %s (%v)", raw, err)
	}
	if status, raw := postJSON(t, base+"/v1/sessions/"+info.ID+"/changes",
		`{"changes": [{"kind": "add-clause", "lits": [2, 3]}]}`); status != http.StatusAccepted {
		t.Fatalf("queue with store down: %d %s", status, raw)
	}
	if status, raw := postJSON(t, base+"/v1/sessions/"+info.ID+"/solve", ""); status != http.StatusOK {
		t.Fatalf("solve with store down: %d %s", status, raw)
	}

	resp, err := http.Get(base + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	rawList, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Degraded []string `json:"degraded"`
	}
	if err := json.Unmarshal(rawList, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Degraded) != 1 || list.Degraded[0] != info.ID {
		t.Fatalf("session not visibly quarantined: %s", rawList)
	}
	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawM, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m struct {
		Quarantines      int64 `json:"quarantines"`
		SnapshotFailures int64 `json:"snapshot_failures"`
		Solves           int64 `json:"solves"`
	}
	if err := json.Unmarshal(rawM, &m); err != nil {
		t.Fatal(err)
	}
	if m.Quarantines < 1 || m.SnapshotFailures < 1 || m.Solves < 1 {
		t.Fatalf("quarantine not visible in metrics: %s", rawM)
	}
}
