package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"ilpec/internal/core"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", ":0", "-strategy", "preserving", "-timeout", "5s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":0" || cfg.strategy != core.PreservingEC || cfg.timeLimit != 5*time.Second {
		t.Fatalf("cfg %+v", cfg)
	}
	if _, err := parseFlags([]string{"-strategy", "psychic"}, io.Discard); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("stray argument accepted")
	}
}

// TestServeLifecycle boots the real server on a random port, drives one
// session through the HTTP API, and checks the graceful shutdown path.
func TestServeLifecycle(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-drain", "2s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, cfg, log.New(io.Discard, "", 0), func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"clauses": [[1,2],[-1,3]]}`
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || json.Unmarshal(raw, &info) != nil || info.ID == "" {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/solve", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
