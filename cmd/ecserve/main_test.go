package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"ilpec/internal/core"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", ":0", "-strategy", "preserving", "-timeout", "5s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":0" || cfg.strategy != core.PreservingEC || cfg.timeLimit != 5*time.Second {
		t.Fatalf("cfg %+v", cfg)
	}
	if !cfg.presolve || !cfg.cuts {
		t.Fatalf("presolve/cuts should default on: %+v", cfg)
	}
	cfg2, err := parseFlags([]string{"-presolve=false", "-cuts=false"}, io.Discard)
	if err != nil || cfg2.presolve || cfg2.cuts {
		t.Fatalf("presolve/cuts flags not honored: %+v (%v)", cfg2, err)
	}
	if _, err := parseFlags([]string{"-strategy", "psychic"}, io.Discard); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("stray argument accepted")
	}
}

// TestServeLifecycle boots the real server on a random port, drives one
// session through the HTTP API, and checks the graceful shutdown path.
func TestServeLifecycle(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-drain", "2s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, cfg, log.New(io.Discard, "", 0), func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"clauses": [[1,2],[-1,3]]}`
	resp, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || json.Unmarshal(raw, &info) != nil || info.ID == "" {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/solve", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// startTestServer boots the real server on a random port and returns its
// base URL.
func startTestServer(t *testing.T) string {
	t.Helper()
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-drain", "2s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, cfg, log.New(io.Discard, "", 0), func(addr string) { addrCh <- addr })
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	})
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	return ""
}

// postJSON posts a JSON body and returns the status code and the decoded
// structured error (zero-valued on success responses).
func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestServeClientErrorPaths pins that client mistakes — unknown domain or
// strategy names, malformed problems, bad change kinds — come back as
// HTTP 400 (never 500) with the structured {"error":{code,message}} body.
func TestServeClientErrorPaths(t *testing.T) {
	base := startTestServer(t)
	decode := func(raw string) (code, message string) {
		var eb struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal([]byte(raw), &eb); err != nil {
			t.Fatalf("unstructured error body %q: %v", raw, err)
		}
		return eb.Error.Code, eb.Error.Message
	}

	for name, tc := range map[string]struct {
		body     string
		wantCode string
	}{
		"unknown domain":   {`{"domain": "quantum", "problem": {}}`, "unknown_domain"},
		"unknown strategy": {`{"clauses": [[1,2]], "strategy": "psychic"}`, "unknown_strategy"},
		"bad problem":      {`{"domain": "coloring", "problem": {"vertices": 3, "k": 0}}`, "bad_problem"},
		"missing problem":  {`{"domain": "sched"}`, "bad_problem"},
	} {
		t.Run(name, func(t *testing.T) {
			status, raw := postJSON(t, base+"/v1/sessions", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", status, raw)
			}
			code, message := decode(raw)
			if code != tc.wantCode || message == "" {
				t.Fatalf("error %q/%q, want code %q", code, message, tc.wantCode)
			}
		})
	}

	// Bad change kind on a live session.
	status, raw := postJSON(t, base+"/v1/sessions", `{"domain": "partition", "problem": {"vertices": 4, "blocks": 2, "edges": [[1,2]]}}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, raw)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil || info.ID == "" {
		t.Fatalf("create info %q: %v", raw, err)
	}
	status, raw = postJSON(t, base+"/v1/sessions/"+info.ID+"/changes", `{"changes": [{"kind": "warp"}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad change: %d %s", status, raw)
	}
	if code, _ := decode(raw); code != "bad_change" {
		t.Fatalf("error code %q, want bad_change", code)
	}
}

// TestServePartitionEndToEnd drives the new partitioning domain through
// the real server: create by domain name, initial solve, netlist change
// batch, fast-EC re-solve.
func TestServePartitionEndToEnd(t *testing.T) {
	base := startTestServer(t)
	status, raw := postJSON(t, base+"/v1/sessions",
		`{"domain": "partition", "problem": {"vertices": 6, "blocks": 2, "edges": [[1,2],[2,3],[4,5],[5,6],[3,4]]}}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d %s", status, raw)
	}
	var info struct {
		ID     string `json:"id"`
		Domain string `json:"domain"`
	}
	if err := json.Unmarshal([]byte(raw), &info); err != nil || info.Domain != "partition" {
		t.Fatalf("create info %q: %v", raw, err)
	}
	sessURL := base + "/v1/sessions/" + info.ID
	var solve struct {
		Status   string `json:"status"`
		Batched  int    `json:"batched"`
		Solution []int  `json:"solution"`
	}
	status, raw = postJSON(t, sessURL+"/solve", "")
	if status != http.StatusOK || json.Unmarshal([]byte(raw), &solve) != nil {
		t.Fatalf("solve: %d %s", status, raw)
	}
	if solve.Status != "initial" || len(solve.Solution) != 6 {
		t.Fatalf("initial solve %+v", solve)
	}
	status, raw = postJSON(t, sessURL+"/changes",
		`{"changes": [{"kind": "add-vertex"}, {"kind": "set-bounds", "max": 4}, {"kind": "add-edge", "u": 7, "v": 1, "weight": 2}]}`)
	if status != http.StatusAccepted {
		t.Fatalf("changes: %d %s", status, raw)
	}
	status, raw = postJSON(t, sessURL+"/solve", "")
	if status != http.StatusOK || json.Unmarshal([]byte(raw), &solve) != nil {
		t.Fatalf("batch solve: %d %s", status, raw)
	}
	if solve.Status != "fast" || solve.Batched != 3 || len(solve.Solution) != 7 {
		t.Fatalf("batch solve %+v", solve)
	}
}

// TestServeDomainsEndpoint pins that the server advertises all built-in
// domains.
func TestServeDomainsEndpoint(t *testing.T) {
	base := startTestServer(t)
	resp, err := http.Get(base + "/v1/domains")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("domains: %d %s", resp.StatusCode, raw)
	}
	var out struct {
		Domains []string `json:"domains"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cnf": true, "coloring": true, "sched": true, "partition": true}
	for _, d := range out.Domains {
		delete(want, d)
	}
	if len(want) != 0 {
		t.Fatalf("missing domains %v in %s", want, raw)
	}
}

// TestServeMetricsCounters: /v1/metrics reports the presolve/cut-pool
// counters the PR-4 solver layers feed (the server runs with presolve and
// cuts on by default).
func TestServeMetricsCounters(t *testing.T) {
	base := startTestServer(t)
	body := `{"clauses": [[1,2],[-1,3],[2,3]]}`
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		ID string `json:"id"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if json.Unmarshal(raw, &info) != nil || info.ID == "" {
		t.Fatalf("create: %s", raw)
	}
	resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/solve", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics body %s: %v", raw, err)
	}
	for _, k := range []string{
		"presolve_fixed", "presolve_rows", "cuts_added", "cuts_reused",
		"cut_tightenings", "truncated_solves",
	} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metrics missing %q: %s", k, raw)
		}
	}
}
