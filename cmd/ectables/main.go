// Command ectables regenerates the paper's experimental tables and figure
// measurements on the synthetic benchmark families.
//
// Usage:
//
//	ectables -table 1 -profile ci
//	ectables -table all -profile quick
//	ectables -figure 2 -profile ci
//	ectables -figure 1 -instance ii8a1
//
// Profiles: quick (seconds), ci (minutes, default), paper (original
// dimensions; the exact solves can take hours, as CPLEX did in 2002).
package main

import (
	"flag"
	"fmt"
	"os"

	"ilpec/internal/exp"
	"ilpec/internal/gen"
)

func main() {
	table := flag.String("table", "", "table to regenerate: 1, 2, 3, or all")
	figure := flag.String("figure", "", "figure to regenerate: 1 or 2")
	colSweep := flag.Bool("coloring", false, "run the graph-coloring EC sweep")
	profile := flag.String("profile", "ci", "experiment profile: quick, ci, or paper")
	instance := flag.String("instance", "ii8a1", "instance for -figure 1")
	flag.Parse()

	p, err := exp.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *table == "" && *figure == "" && !*colSweep {
		*table = "all"
	}

	switch *table {
	case "":
	case "1":
		fmt.Print(exp.RunTable1(p).Render())
	case "2":
		fmt.Print(exp.RunTable2(p).Render())
	case "3":
		fmt.Print(exp.RunTable3(p).Render())
	case "all":
		fmt.Print(exp.RunTable1(p).Render())
		fmt.Println()
		fmt.Print(exp.RunTable2(p).Render())
		fmt.Println()
		fmt.Print(exp.RunTable3(p).Render())
	default:
		fatal(fmt.Errorf("unknown -table %q", *table))
	}

	switch *figure {
	case "":
	case "1":
		spec, ok := gen.ByName(*instance)
		if !ok {
			fatal(fmt.Errorf("unknown instance %q", *instance))
		}
		steps, err := exp.Figure1Trace(gen.Scaled(spec, p.Scale), p)
		if err != nil {
			fatal(err)
		}
		fmt.Print(exp.RenderFlowSteps(steps))
	case "2":
		fmt.Print(exp.RenderFigure2(exp.RunFigure2(p)))
	default:
		fatal(fmt.Errorf("unknown -figure %q", *figure))
	}

	if *colSweep {
		fmt.Print(exp.RenderColoring(exp.RunColoring(p)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ectables:", err)
	os.Exit(1)
}
