package ilpec_test

// Public-API tests for the scheduling (behavioral-synthesis) EC domain.

import (
	"testing"

	"ilpec"
)

func TestPublicScheduling(t *testing.T) {
	// Two adders (capacity 1) and a multiplier, diamond dependencies.
	p := ilpec.NewSchedProblem([]int{1, 1}, 4)
	a := p.AddOp(0)
	b := p.AddOp(0)
	c := p.AddOp(1)
	d := p.AddOp(0)
	p.AddDep(a, b)
	p.AddDep(a, c)
	p.AddDep(b, d)
	p.AddDep(c, d)

	greedy, err := ilpec.ListSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.Valid(p) {
		t.Fatal("greedy invalid")
	}
	s, res, err := ilpec.SolveSchedule(p, greedy, ilpec.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid(p) || res.Status.String() == "" {
		t.Fatal("exact schedule invalid")
	}

	// EC: a new multiplier fed by op a — fast EC keeps everything else put.
	changed := p.Clone()
	n := changed.AddOp(1)
	changed.AddDep(a, n)
	fastSol, stats, err := ilpec.FastResolveDomain(ilpec.SchedDomain(), changed, s, ilpec.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, region := fastSol.(ilpec.SchedSchedule), stats.SubSize
	if !fast.Valid(changed) || region > 2 {
		t.Fatalf("fast reschedule: valid=%v region=%d", fast.Valid(changed), region)
	}
	for o := 0; o < p.NumOps; o++ {
		if fast[o] != s[o] {
			t.Fatalf("op %d moved under fast EC", o)
		}
	}

	// EC: extra serialization — preserving EC keeps most steps.
	changed2 := p.Clone()
	changed2.AddDep(b, c)
	presSol, err := ilpec.PreserveResolveDomain(ilpec.SchedDomain(), changed2, s, ilpec.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pres := presSol.(ilpec.SchedSchedule)
	if !pres.Valid(changed2) {
		t.Fatal("preserving schedule invalid")
	}
	if pres.Agreement(s) < 0.5 {
		t.Fatalf("agreement %.2f", pres.Agreement(s))
	}

	// Enabling: spare-slot rewarded schedule on a loose instance.
	loose := ilpec.NewSchedProblem([]int{2}, 4)
	loose.AddOp(0)
	loose.AddOp(0)
	enSol, err := ilpec.EnableDomain(ilpec.SchedDomain(), loose, ilpec.DomainEnableOptions{Weight: 2}, ilpec.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	en := enSol.(ilpec.SchedSchedule)
	if !en.Valid(loose) {
		t.Fatal("enabled schedule invalid")
	}
}
