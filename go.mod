module ilpec

go 1.23
