module ilpec

go 1.24
