package ilpec_test

// Facade tests: every public entry point of package ilpec is exercised at
// least once against the paper's worked examples.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ilpec"
)

func introFormula() *ilpec.Formula {
	return ilpec.NewFormula(
		[]int{1, -3, -5},
		[]int{2, -3, -5},
		[]int{2, 4, 5},
		[]int{-3, -4},
	)
}

func TestPublicSolve(t *testing.T) {
	f := introFormula()
	a, err := ilpec.Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfies(f) {
		t.Fatal("solution unsatisfying")
	}
	if _, err := ilpec.Solve(ilpec.NewFormula([]int{1}, []int{-1})); err == nil {
		t.Fatal("UNSAT formula should error")
	}
}

func TestPublicDIMACSRoundTrip(t *testing.T) {
	f := introFormula()
	var buf bytes.Buffer
	if err := ilpec.WriteDIMACS(&buf, f, "public api"); err != nil {
		t.Fatal(err)
	}
	g, err := ilpec.ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || g.NumClauses() != f.NumClauses() {
		t.Fatal("round trip mismatch")
	}
}

func TestPublicEnableAndVerify(t *testing.T) {
	f := introFormula()
	sol, err := ilpec.EnableDomain(ilpec.CNFDomain(), f, ilpec.DomainEnableOptions{Hard: true})
	if err != nil {
		t.Fatal(err)
	}
	a := sol.(ilpec.Assignment)
	rep := ilpec.VerifyFlexibility(f, a, 2)
	if len(rep.Unsupported) != 0 {
		t.Fatalf("unsupported clauses %v", rep.Unsupported)
	}
	s, total := ilpec.EliminationSurvival(f, a)
	if s != total {
		t.Fatalf("survival %d/%d", s, total)
	}
	one := ilpec.SimulateElimination(f, a, 3)
	if !one.OK {
		t.Fatal("elimination of v3 not absorbed")
	}
}

func TestPublicChangesAndFast(t *testing.T) {
	f := introFormula()
	p, err := ilpec.Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	changes := []ilpec.Change{
		ilpec.GrowVariable(),
		ilpec.NewClause(-2, 6),
	}
	fPrime, err := ilpec.ApplyChanges(f, changes)
	if err != nil {
		t.Fatal(err)
	}
	simp := ilpec.Simplify(fPrime, p)
	_ = simp
	sol, _, err := ilpec.FastResolveDomain(ilpec.CNFDomain(), fPrime, p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.(ilpec.Assignment).Satisfies(fPrime) {
		t.Fatal("fast result unsatisfying")
	}
	if ilpec.DropClause(0).Tightening() || !ilpec.EliminateVariable(1).Tightening() {
		t.Fatal("change classification wrong")
	}
}

func TestPublicPreserve(t *testing.T) {
	f := ilpec.NewFormula(
		[]int{1, 2, 4}, []int{1, 4, -5}, []int{-1, -3, 4},
		[]int{2, 3, 5}, []int{-2, 4, 5}, []int{3, -4, 5},
	)
	p := ilpec.Assignment{ilpec.Unassigned, ilpec.True, ilpec.True, ilpec.False, ilpec.False, ilpec.True}
	fPrime, err := ilpec.ApplyChanges(f, []ilpec.Change{
		ilpec.NewClause(-2, 3, 4), ilpec.NewClause(1, -2, -5),
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ilpec.PreserveResolveDomain(ilpec.CNFDomain(), fPrime, p)
	if err != nil {
		t.Fatal(err)
	}
	if kept := sol.(ilpec.Assignment).PreservedFraction(p); kept < 0.8-1e-9 {
		t.Fatalf("preserved %.2f < 0.8", kept)
	}
}

func TestPublicFlow(t *testing.T) {
	fl := ilpec.NewFlow(introFormula(), ilpec.FlowOptions{})
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.ApplyChange([]ilpec.Change{ilpec.NewClause(-2, 1)}, ilpec.FastEC); err != nil {
		t.Fatal(err)
	}
	if len(fl.History()) != 2 {
		t.Fatalf("history %d", len(fl.History()))
	}
	_ = ilpec.PreservingEC
	_ = ilpec.Replan
	_ = ilpec.ExactILP
	_ = ilpec.HeuristicILP
}

func TestPublicILPLayer(t *testing.T) {
	m2 := ilpec.NewModel(true)
	a := m2.AddVar("a", 2)
	b := m2.AddVar("b", 1)
	m2.AddRow("cap", []ilpec.ModelCoef{{Var: a, Val: 1}, {Var: b, Val: 1}}, ilpec.RowLE, 1)
	res := ilpec.SolveILP(m2, ilpec.SolveOptions{})
	if res.Objective != 2 {
		t.Fatalf("objective %v", res.Objective)
	}
	h := ilpec.SolveILPHeuristic(m2, ilpec.HeuristicOptions{Seed: 1})
	if !h.Feasible {
		t.Fatal("heuristic found nothing")
	}
	e := ilpec.EncodeSAT(introFormula())
	if e.Model.NumVars() != 10 {
		t.Fatalf("encoding vars %d", e.Model.NumVars())
	}
}

func TestPublicColoring(t *testing.T) {
	g := ilpec.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	col, _, err := ilpec.ColorExact(g, 2, nil, ilpec.SolveOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Valid(g, 2) {
		t.Fatal("invalid coloring")
	}
	if gg := ilpec.ColorGreedy(g); !gg.Valid(g, 0) {
		t.Fatal("greedy invalid")
	}
	g.AddEdge(1, 3)
	fastSol, _, err := ilpec.FastResolveDomain(ilpec.ColoringDomain(), &ilpec.ColoringProblem{G: g, K: 3}, col)
	if err != nil {
		t.Fatal(err)
	}
	if !fastSol.(ilpec.GraphColoring).Valid(g, 3) {
		t.Fatal("fast recolor invalid")
	}
	presSol, err := ilpec.PreserveResolveDomain(ilpec.ColoringDomain(), &ilpec.ColoringProblem{G: g, K: 3}, col)
	if err != nil {
		t.Fatal(err)
	}
	if !presSol.(ilpec.GraphColoring).Valid(g, 3) {
		t.Fatal("preserve recolor invalid")
	}
	enSol, err := ilpec.EnableDomain(ilpec.ColoringDomain(), &ilpec.ColoringProblem{G: g, K: 4}, ilpec.DomainEnableOptions{Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !enSol.(ilpec.GraphColoring).Valid(g, 4) {
		t.Fatal("enabled coloring invalid")
	}
}

func TestPublicBenchmarks(t *testing.T) {
	all := ilpec.Benchmarks()
	if len(all) != 13 {
		t.Fatalf("registry %d entries", len(all))
	}
	s, ok := ilpec.BenchmarkByName("ii8a1")
	if !ok {
		t.Fatal("lookup failed")
	}
	f, plant := s.Generate()
	if !plant.Satisfies(f) {
		t.Fatal("plant unsatisfying")
	}
	if !strings.Contains(s.Name, "ii8a1") {
		t.Fatal("name mismatch")
	}
}

// TestPublicDomains exercises the generic domain surface: registry
// lookups, the four built-in adapters, and the EC triad through the
// SolveDomain/FastResolveDomain/PreserveResolveDomain/EnableDomain
// entry points.
func TestPublicDomains(t *testing.T) {
	names := ilpec.Domains()
	for _, want := range []string{"cnf", "coloring", "sched", "partition"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("domain %q not registered (have %v)", want, names)
		}
		if _, ok := ilpec.DomainByName(want); !ok {
			t.Fatalf("DomainByName(%q) failed", want)
		}
	}

	// CNF through the generic engine.
	d := ilpec.CNFDomain()
	f := introFormula()
	sol, err := ilpec.SolveDomain(d, f)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.(ilpec.Assignment).Satisfies(f) {
		t.Fatal("generic CNF solve unsatisfying")
	}
	changed, err := d.ApplyChanges(f, []any{ilpec.NewClause(-2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	fastSol, stats, err := ilpec.FastResolveDomain(d, changed, sol)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(changed, fastSol); err != nil {
		t.Fatal(err)
	}
	if !stats.AlreadyValid && stats.SubSize == 0 {
		t.Fatalf("fast stats %+v", stats)
	}
	if _, err := ilpec.PreserveResolveDomain(d, changed, sol); err != nil {
		t.Fatal(err)
	}
	if _, err := ilpec.EnableDomain(d, f, ilpec.DomainEnableOptions{K: 2, Weight: 2}); err != nil {
		t.Fatal(err)
	}

	// Partitioning: the new domain end to end, plus the generic flow.
	p := ilpec.NewPartitionProblem(6, 2)
	p.AddEdge(1, 2, 0)
	p.AddEdge(2, 3, 0)
	p.AddEdge(4, 5, 0)
	p.AddEdge(5, 6, 0)
	p.AddEdge(3, 4, 2)
	pd := ilpec.PartitionDomain()
	psol, err := ilpec.SolveDomain(pd, p)
	if err != nil {
		t.Fatal(err)
	}
	pa := psol.(ilpec.PartitionAssignment)
	if !pa.Valid(p) {
		t.Fatal("partition invalid")
	}
	if g := ilpec.GreedyPartition(p); !g.Valid(p) {
		t.Fatal("greedy partition invalid")
	}
	fl := ilpec.NewDomainFlow(pd, p, ilpec.DomainFlowOptions{})
	if _, err := fl.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.ApplyChanges([]any{
		ilpec.PartitionChange{Kind: "add-vertex"},
		ilpec.PartitionChange{Kind: "set-bounds", Max: 4},
	}, ilpec.FastEC); err != nil {
		t.Fatal(err)
	}
	if err := pd.Verify(fl.Problem(), fl.Solution()); err != nil {
		t.Fatal(err)
	}
}

// TestPublicDomainService drives a non-CNF domain through the re-exported
// session service.
func TestPublicDomainService(t *testing.T) {
	svc := ilpec.NewService(ilpec.ServiceOptions{})
	defer svc.Close()
	g := ilpec.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	sess, err := svc.CreateDomainSession("coloring", &ilpec.ColoringProblem{G: g, K: 3}, ilpec.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "initial" || res.Solution == nil {
		t.Fatalf("solve %+v", res)
	}
	sess.QueueChanges(ilpec.ColoringChange{Kind: "add-edge", U: 1, V: 3})
	res, err = sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "fast" || res.Batched != 1 {
		t.Fatalf("batch solve %+v", res)
	}
	rep, err := sess.FlexReport(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 {
		t.Fatalf("flex %+v", rep)
	}
}

// TestPublicDurableService drives the re-exported durable session store:
// a session survives a service "restart" over the same store, and the
// file backend round-trips through NewFileSessionStore.
func TestPublicDurableService(t *testing.T) {
	st := ilpec.NewMemorySessionStore()
	svc := ilpec.NewService(ilpec.ServiceOptions{Store: st})
	sess, err := svc.CreateSession(ilpec.NewFormula([]int{1, 2}, []int{-1, 3}), ilpec.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Queue(ilpec.NewClause(-2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	want := sess.Solution()
	id := sess.ID()
	svc.Close()

	svc2 := ilpec.NewService(ilpec.ServiceOptions{Store: st})
	defer svc2.Close()
	m := svc2.Metrics()
	if m.Recoveries != 1 {
		t.Fatalf("recoveries %d, want 1", m.Recoveries)
	}
	back, ok := svc2.Session(id)
	if !ok {
		t.Fatal("session did not survive the restart")
	}
	got := back.Solution()
	if got.NumVars() != want.NumVars() {
		t.Fatalf("recovered solution spans %d vars, want %d", got.NumVars(), want.NumVars())
	}
	for v := 1; v <= want.NumVars(); v++ {
		if got.Get(v) != want.Get(v) {
			t.Fatalf("recovered solution diverged at variable %d", v)
		}
	}

	fileStore, err := ilpec.NewFileSessionStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc3 := ilpec.NewService(ilpec.ServiceOptions{Store: fileStore})
	defer svc3.Close()
	if _, err := svc3.CreateSession(ilpec.NewFormula([]int{1, 2}), ilpec.SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if ids := svc3.Sessions(); len(ids) != 1 {
		t.Fatalf("file-backed sessions %v", ids)
	}
}
