// Package ilpec is the public API of the ILP-based engineering-change
// library — a from-scratch reproduction of "ILP-Based Engineering Change"
// (Koushanfar, Wong, Feng, Potkonjak; DAC 2002).
//
// The package re-exports the stable surface of the internal packages:
//
//   - CNF formulas, assignments, and DIMACS I/O (internal/cnf);
//   - the specification-change model and the three EC components —
//     enabling, fast, and preserving EC (internal/core);
//   - the generic Domain interface and Figure-1 flow orchestrator that
//     run the EC triad for ANY registered problem class
//     (internal/domain), with four built-in adapters: CNF/set-cover,
//     graph coloring (internal/coloring), scheduling (internal/sched),
//     and min-cut netlist partitioning (internal/partition);
//   - 0-1 ILP modeling and the exact and heuristic solvers
//     (internal/ilp, internal/heurilp);
//   - the SAT↔set-cover encoding (internal/encode);
//   - the EC session service and its HTTP front end (internal/service);
//   - the durable session store — write-ahead change journal, snapshots,
//     crash recovery — behind it (internal/store);
//   - the fault-injection harness and the failure-hardening controls —
//     store retry policy, session quarantine, admission bounds — that the
//     chaos suite exercises (internal/fault);
//   - the synthetic DIMACS benchmark families (internal/gen).
//
// See examples/quickstart for a guided tour and examples/domains for
// plugging a custom domain into the engine.
package ilpec

import (
	"io"
	"net/http"

	"ilpec/internal/cluster"
	"ilpec/internal/cnf"
	"ilpec/internal/coloring"
	"ilpec/internal/core"
	"ilpec/internal/domain"
	"ilpec/internal/encode"
	"ilpec/internal/fault"
	"ilpec/internal/gen"
	"ilpec/internal/heurilp"
	"ilpec/internal/ilp"
	"ilpec/internal/partition"
	"ilpec/internal/router"
	"ilpec/internal/sched"
	"ilpec/internal/service"
	"ilpec/internal/store"
)

// ---- CNF substrate -------------------------------------------------------

// Lit is a DIMACS-style literal: +v or -v for variable v ≥ 1.
type Lit = cnf.Lit

// Clause is a disjunction of literals.
type Clause = cnf.Clause

// Formula is a CNF formula.
type Formula = cnf.Formula

// Assignment is a tri-state (true/false/don't-care) assignment.
type Assignment = cnf.Assignment

// Value is the tri-state value of a variable.
type Value = cnf.Value

// Truth values of Value.
const (
	True       = cnf.True
	False      = cnf.False
	Unassigned = cnf.Unassigned
)

// NewFormula builds a formula from literal slices (see cnf.FromClauses).
func NewFormula(clauses ...[]int) *Formula { return cnf.FromClauses(clauses...) }

// ParseDIMACS reads a DIMACS CNF formula.
func ParseDIMACS(r io.Reader) (*Formula, error) { return cnf.ParseDIMACS(r) }

// ParseDIMACSFile reads a DIMACS CNF file.
func ParseDIMACSFile(path string) (*Formula, error) { return cnf.ParseDIMACSFile(path) }

// WriteDIMACS writes a formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula, comments ...string) error {
	return cnf.WriteDIMACS(w, f, comments...)
}

// ---- changes (the EC specification model) --------------------------------

// Change is one specification change (add/remove clause, add/eliminate
// variable).
type Change = core.Change

// ChangeKind enumerates change kinds.
type ChangeKind = core.ChangeKind

// Change kinds.
const (
	AddClause      = core.AddClause
	RemoveClause   = core.RemoveClause
	AddVariable    = core.AddVariable
	RemoveVariable = core.RemoveVariable
)

// NewClause returns an add-clause change.
func NewClause(lits ...int) Change { return core.NewClause(lits...) }

// DropClause returns a remove-clause change.
func DropClause(i int) Change { return core.DropClause(i) }

// GrowVariable returns an add-variable change.
func GrowVariable() Change { return core.GrowVariable() }

// EliminateVariable returns a remove-variable change.
func EliminateVariable(v int) Change { return core.EliminateVariable(v) }

// ApplyChanges produces the changed formula.
func ApplyChanges(f *Formula, changes []Change) (*Formula, error) {
	return core.Apply(f, changes)
}

// ---- solving -------------------------------------------------------------

// SolveOptions configures the exact 0-1 ILP solver.
type SolveOptions = ilp.Options

// firstOpt resolves the variadic-options idiom: the first element when
// present, the zero value otherwise.
func firstOpt(opts ...SolveOptions) SolveOptions {
	if len(opts) > 0 {
		return opts[0]
	}
	return SolveOptions{}
}

// Solve finds a satisfying assignment for f through the §3 set-cover ILP,
// maximizing don't-cares. It returns an error when f is unsatisfiable.
func Solve(f *Formula, opts ...SolveOptions) (Assignment, error) {
	a, _, err := core.PlainResolve(f, firstOpt(opts...))
	return a, err
}

// ---- enabling EC (§5) ------------------------------------------------------

// EnableOptions configures enabling EC.
type EnableOptions = core.EnableOptions

// EnableMode selects constraints vs objective flavor.
type EnableMode = core.EnableMode

// Enabling modes.
const (
	EnableConstraints = core.EnableConstraints
	EnableObjective   = core.EnableObjective
)

// EnableResult is the outcome of an enabling-EC solve (see
// FlowOptions.Enable and EnableDomain).
type EnableResult = core.EnableResult

// FlexReport audits a solution's flexibility.
type FlexReport = core.FlexReport

// VerifyFlexibility audits an assignment against the enabling goal.
func VerifyFlexibility(f *Formula, a Assignment, k int) FlexReport {
	return core.VerifyFlexibility(f, a, k)
}

// RepairResult is the outcome of SimulateElimination.
type RepairResult = core.RepairResult

// SimulateElimination eliminates variable v and locally repairs a.
func SimulateElimination(f *Formula, a Assignment, v int) RepairResult {
	return core.SimulateElimination(f, a, v)
}

// EliminationSurvival sweeps every variable elimination under a.
func EliminationSurvival(f *Formula, a Assignment) (survived, total int) {
	return core.EliminationSurvival(f, a)
}

// ---- fast EC (§6) ----------------------------------------------------------

// FastOptions configures fast EC.
type FastOptions = core.FastOptions

// FastResult is the outcome of a CNF fast-EC re-solve (see
// FlowOptions.Fast and FastResolveDomain).
type FastResult = core.FastResult

// SimplifyResult is the Figure-2 closure output.
type SimplifyResult = core.SimplifyResult

// Simplify extracts the minimal affected sub-instance (Figure 2).
func Simplify(fPrime *Formula, p Assignment) SimplifyResult {
	return core.Simplify(fPrime, p)
}

// ---- preserving EC (§7) -----------------------------------------------------

// PreserveOptions configures preserving EC.
type PreserveOptions = core.PreserveOptions

// PreserveMode selects the preservation flavor.
type PreserveMode = core.PreserveMode

// Preservation modes.
const (
	PreserveMaximize = core.PreserveMaximize
	PreserveHard     = core.PreserveHard
	PreserveWeighted = core.PreserveWeighted
)

// PreserveResult is the outcome of a CNF preserving-EC re-solve (see
// FlowOptions.Preserve and PreserveResolveDomain).
type PreserveResult = core.PreserveResult

// ---- the Figure-1 flow -----------------------------------------------------

// Flow drives the generic EC flow of Figure 1.
type Flow = core.Flow

// FlowOptions configures a Flow.
type FlowOptions = core.FlowOptions

// Strategy selects the re-solve strategy of a flow step.
type Strategy = core.Strategy

// Flow strategies.
const (
	FastEC       = core.FastEC
	PreservingEC = core.PreservingEC
	Replan       = core.Replan
)

// SolverKind selects exact vs heuristic initial solving.
type SolverKind = core.SolverKind

// Solver kinds.
const (
	ExactILP     = core.ExactILP
	HeuristicILP = core.HeuristicILP
)

// Step records one flow action.
type Step = core.Step

// NewFlow creates a Figure-1 flow for the original specification f.
func NewFlow(f *Formula, opts FlowOptions) *Flow { return core.NewFlow(f, opts) }

// ---- ILP layer -------------------------------------------------------------

// Model is a 0-1 integer linear program.
type Model = ilp.Model

// ModelCoef is a sparse row coefficient of a Model.
type ModelCoef = ilp.Coef

// RowSense is a row comparison sense.
type RowSense = ilp.Sense

// Row senses.
const (
	RowLE = ilp.LE
	RowGE = ilp.GE
	RowEQ = ilp.EQ
)

// ILPResult is the outcome of an exact solve.
type ILPResult = ilp.Result

// NewModel creates an empty 0-1 ILP.
func NewModel(maximize bool) *Model { return ilp.NewModel(maximize) }

// SolveILP runs exact branch and bound.
func SolveILP(m *Model, opts SolveOptions) ILPResult { return ilp.Solve(m, opts) }

// HeuristicOptions configures the heuristic ILP solver (ref [6] stand-in).
type HeuristicOptions = heurilp.Options

// HeuristicResult is the outcome of the heuristic solver.
type HeuristicResult = heurilp.Result

// SolveILPHeuristic runs the iterative-improvement local search.
func SolveILPHeuristic(m *Model, opts HeuristicOptions) HeuristicResult {
	return heurilp.Solve(m, opts)
}

// Encoding is the §3 SAT↔set-cover ILP encoding.
type Encoding = encode.Encoding

// EncodeSAT builds the set-cover ILP of a formula.
func EncodeSAT(f *Formula) *Encoding { return encode.New(f) }

// ---- graph coloring application ---------------------------------------------

// Graph is a simple undirected graph (coloring application).
type Graph = coloring.Graph

// GraphColoring is a color-per-vertex assignment.
type GraphColoring = coloring.Coloring

// NewGraph creates an empty graph with n vertices.
func NewGraph(n int) *Graph { return coloring.NewGraph(n) }

// ColorExact colors g with at most k colors via the exact ILP solver.
func ColorExact(g *Graph, k int, warm GraphColoring, opts SolveOptions) (GraphColoring, ILPResult, error) {
	return coloring.SolveExact(g, k, warm, opts)
}

// ColorGreedy colors g with the DSATUR heuristic.
func ColorGreedy(g *Graph) GraphColoring { return coloring.Greedy(g) }

// ColoringProblem pairs a graph with its palette size — the problem value
// of the "coloring" domain.
type ColoringProblem = coloring.Problem

// ColoringChange is one coloring specification change (domain wire form).
type ColoringChange = coloring.Change

// ---- scheduling application ---------------------------------------------------

// SchedProblem is a resource-constrained scheduling instance (behavioral-
// synthesis EC domain; see internal/sched).
type SchedProblem = sched.Problem

// SchedSchedule assigns operations to control steps.
type SchedSchedule = sched.Schedule

// NewSchedProblem creates a scheduling problem with the given per-type
// capacities and horizon.
func NewSchedProblem(capacity []int, steps int) *SchedProblem {
	return sched.NewProblem(capacity, steps)
}

// SolveSchedule schedules exactly (warm optional).
func SolveSchedule(p *SchedProblem, warm SchedSchedule, opts SolveOptions) (SchedSchedule, ILPResult, error) {
	return sched.Solve(p, warm, opts)
}

// ListSchedule is the greedy ASAP baseline scheduler.
func ListSchedule(p *SchedProblem) (SchedSchedule, error) { return sched.ListSchedule(p) }

// SchedChange is one scheduling specification change (domain wire form).
type SchedChange = sched.Change

// ---- generic problem domains ---------------------------------------------

// Domain is one pluggable problem class behind the generic EC engine:
// the paper's Figure-1 flow (initial solve → change → enabling / fast /
// preserving EC) runs through this interface for every registered domain.
// Built-in adapters: CNFDomain, ColoringDomain, SchedDomain,
// PartitionDomain; register custom adapters with RegisterDomain. See the
// README "Domains" section and examples/domains for the contract.
type Domain = domain.Domain

// DomainEncoding binds an ILP model to domain decode/encode logic.
type DomainEncoding = domain.Encoding

// DomainRegion is a fast-EC sub-instance with its escalation ladder.
type DomainRegion = domain.Region

// DomainFlexReport is the domain-generic §5 flexibility audit.
type DomainFlexReport = domain.FlexReport

// DomainEnableOptions configures enabling EC generically.
type DomainEnableOptions = domain.EnableOptions

// DomainFastOptions configures the generic fast-EC engine.
type DomainFastOptions = domain.FastOptions

// DomainFastStats reports what the generic fast-EC engine did.
type DomainFastStats = domain.FastStats

// DomainConformance is the fixture a custom Domain supplies for the
// shared conformance suite (domain.RunConformance).
type DomainConformance = domain.Conformance

// ILPSolution is a 0-1 solution vector of an ILP Model (used by
// DomainEncoding implementations).
type ILPSolution = ilp.Solution

// RegisterDomain installs a domain adapter in the process-wide registry;
// services and cmd/ecserve serve it by name immediately.
func RegisterDomain(d Domain) { domain.Register(d) }

// DomainByName looks an adapter up in the process-wide registry.
func DomainByName(name string) (Domain, bool) { return domain.Get(name) }

// Domains lists the registered domain names, sorted.
func Domains() []string { return domain.Names() }

// CNFDomain returns the SAT/set-cover adapter ("cnf") with default EC
// policies.
func CNFDomain() Domain { return core.CNF() }

// CNFDomainOptions tunes the CNF adapter (fast-EC minimality, preserve
// modes, enabling defaults, relax-time flexibility recovery).
type CNFDomainOptions = core.CNFOptions

// CNFDomainWith returns a CNF adapter with explicit EC policies.
func CNFDomainWith(opts CNFDomainOptions) Domain { return core.CNFWith(opts) }

// ColoringDomain returns the graph-coloring adapter ("coloring").
func ColoringDomain() Domain { return coloring.Domain() }

// SchedDomain returns the scheduling adapter ("sched").
func SchedDomain() Domain { return sched.Domain() }

// PartitionDomain returns the min-cut netlist-partitioning adapter
// ("partition").
func PartitionDomain() Domain { return partition.Domain() }

// SolveDomain runs the base solve of a problem (initial solve or replan);
// the result is a domain solution value.
func SolveDomain(d Domain, problem any, opts ...SolveOptions) (any, error) {
	sol, _, err := domain.Solve(d, problem, firstOpt(opts...), nil)
	return sol, err
}

// EnableDomain runs the §5 enabling-EC solve for any domain.
func EnableDomain(d Domain, problem any, eopts DomainEnableOptions, opts ...SolveOptions) (any, error) {
	sol, _, err := domain.Enable(d, problem, eopts, firstOpt(opts...), nil)
	return sol, err
}

// FastResolveDomain runs the §6 fast-EC engine for any domain: re-solve
// only the affected region of the changed problem, escalating on
// infeasibility.
func FastResolveDomain(d Domain, problem, prev any, opts ...SolveOptions) (any, DomainFastStats, error) {
	return domain.Fast(d, problem, prev, DomainFastOptions{Solve: firstOpt(opts...)})
}

// PreserveResolveDomain runs the §7 preserving-EC solve for any domain:
// re-solve the changed problem maximizing agreement with prev.
func PreserveResolveDomain(d Domain, problem, prev any, opts ...SolveOptions) (any, error) {
	sol, _, err := domain.Preserve(d, problem, prev, firstOpt(opts...))
	return sol, err
}

// DomainFlow is the generic Figure-1 flow over any Domain.
type DomainFlow = domain.Flow

// DomainFlowOptions configures a DomainFlow.
type DomainFlowOptions = domain.FlowOptions

// NewDomainFlow creates a Figure-1 flow for any registered domain.
func NewDomainFlow(d Domain, problem any, opts DomainFlowOptions) *DomainFlow {
	return domain.NewFlow(d, problem, opts)
}

// ---- netlist partitioning application --------------------------------------

// PartitionProblem is a min-cut netlist-partitioning instance (the
// "partition" domain).
type PartitionProblem = partition.Problem

// PartitionAssignment maps vertices to blocks.
type PartitionAssignment = partition.Assignment

// PartitionEdge is a weighted netlist edge.
type PartitionEdge = partition.Edge

// PartitionChange is one netlist specification change (domain wire form).
type PartitionChange = partition.Change

// NewPartitionProblem creates a partitioning problem with n vertices and
// b blocks.
func NewPartitionProblem(n, b int) *PartitionProblem { return partition.NewProblem(n, b) }

// GreedyPartition builds a balanced starting partition.
func GreedyPartition(p *PartitionProblem) PartitionAssignment { return partition.Greedy(p) }

// ---- EC session service --------------------------------------------------------

// Service manages long-lived EC sessions with batched change application,
// a shared solve cache, and a worker-pool executor (internal/service).
type Service = service.Service

// ServiceOptions configures a Service.
type ServiceOptions = service.Options

// Session is one long-lived engineering-change session.
type Session = service.Session

// SessionConfig carries per-session overrides at creation time.
type SessionConfig = service.SessionConfig

// SessionInfo is a point-in-time summary of a session.
type SessionInfo = service.SessionInfo

// SessionSolveResult reports one Session.Solve outcome.
type SessionSolveResult = service.SolveResult

// ServiceMetrics is a snapshot of the service counters.
type ServiceMetrics = service.MetricsSnapshot

// NewService creates an EC session service; Close it when done.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// NewServiceHandler exposes a Service over HTTP/JSON (the cmd/ecserve
// API).
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// ---- durable session store -----------------------------------------------

// SessionStore persists EC sessions as a write-ahead change journal plus
// periodic snapshots, in the domains' JSON wire forms. Plug one into
// ServiceOptions.Store and sessions survive restarts and crashes, are
// LRU-evictable under ServiceOptions.MaxLiveSessions, and rehydrate
// transparently on touch (see internal/store and the README "Persistence"
// section).
type SessionStore = store.Store

// SessionSnapshot is the persisted full state of one session at a journal
// sequence point.
type SessionSnapshot = store.Snapshot

// SessionRecord is one write-ahead journal entry of a session.
type SessionRecord = store.Record

// SessionRecord kinds: a queued change batch, a committed solve, and a
// discarded batch.
const (
	SessionRecordChanges = store.KindChanges
	SessionRecordSolve   = store.KindSolve
	SessionRecordDiscard = store.KindDiscard
)

// ErrSessionNotFound reports a session id with no persisted state.
var ErrSessionNotFound = store.ErrNotFound

// NewMemorySessionStore returns the in-memory store backend: full
// snapshot/journal semantics, no durability (tests, ephemeral services).
func NewMemorySessionStore() SessionStore { return store.NewMemory() }

// NewFileSessionStore opens (creating if needed) the durable file backend
// rooted at dir: one directory per session holding snapshot.json plus a
// CRC-framed, fsync'd journal.jsonl with torn-tail repair on recovery —
// what cmd/ecserve -data-dir uses.
func NewFileSessionStore(dir string) (SessionStore, error) { return store.NewFile(dir) }

// ---- clustering ----------------------------------------------------------

// NewSharedFileSessionStore opens the file backend in shared mode: safe
// for several processes (an ecserve fleet plus routers) over one
// directory, re-reading durable state instead of trusting per-process
// caches. This is what cmd/ecserve -cluster and cmd/ecrouter use; see
// the README "Clustering" section.
func NewSharedFileSessionStore(dir string) (SessionStore, error) { return store.NewSharedFile(dir) }

// ClusterNode is one member of an ecserve fleet: it heartbeats
// membership into the shared store and scopes session-ownership leases
// and the fleet-wide solve cache. Plug one into ServiceOptions.Cluster
// (with the same shared store) and start/stop it around the service.
type ClusterNode = cluster.Node

// ClusterNodeConfig configures a ClusterNode (id, advertised address,
// shared store, heartbeat cadence, lease TTL).
type ClusterNodeConfig = cluster.Config

// NewClusterNode validates cfg and builds a fleet member; call Start to
// join (synchronous first heartbeat) and Stop to deregister.
func NewClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) { return cluster.NewNode(cfg) }

// ClusterRouter is the stateless front door of a fleet: it consistent-
// hashes session ids onto live, ready nodes and reverse-proxies the
// HTTP/JSON API unchanged (cmd/ecrouter wraps it; see internal/router
// for the routing and failover rules).
type ClusterRouter = router.Router

// ClusterRouterOptions configures a ClusterRouter over the fleet's
// shared store.
type ClusterRouterOptions = router.Options

// NewClusterRouter builds a router; Start begins membership refresh and
// Handler serves the proxied API.
func NewClusterRouter(opts ClusterRouterOptions) (*ClusterRouter, error) { return router.New(opts) }

// ErrSessionNotOwned reports an operation refused because another fleet
// node holds the session's lease (HTTP 503 "not_owner" + Retry-After on
// the wire). Clients retry; the router lands them on the owner.
var ErrSessionNotOwned = service.ErrNotOwner

// ---- fault injection & resilience ----------------------------------------

// FaultPlan is a deterministic, seed-driven store fault schedule; wrap a
// SessionStore with NewFaultySessionStore to inject it (internal/fault).
type FaultPlan = fault.Plan

// FaultRule matches store operations ("append", "snapshot", "load",
// "list", "delete", or "*") and decides when a fault fires: the Nth
// matching call, every Kth, or a seeded coin flip P.
type FaultRule = fault.Rule

// FaultKind selects the injected failure mode.
type FaultKind = fault.Kind

// The injectable failure modes: a transient error, added latency, a torn
// (partial) write, a write whose durability ack is lost, and ENOSPC.
const (
	FaultError   = fault.KindError
	FaultLatency = fault.KindLatency
	FaultTorn    = fault.KindTorn
	FaultFsync   = fault.KindFsync
	FaultENOSPC  = fault.KindENOSPC
)

// NewFaultPlan builds a plan from explicit rules; seed fixes the
// probabilistic triggers.
func NewFaultPlan(seed int64, rules ...FaultRule) *FaultPlan { return fault.NewPlan(seed, rules...) }

// ParseFaultPlan parses the compact spec syntax cmd/ecserve's -fault-plan
// flag uses, e.g. "append:error:p=0.1;snapshot:enospc:nth=2".
func ParseFaultPlan(seed int64, spec string) (*FaultPlan, error) { return fault.ParsePlan(seed, spec) }

// NewFaultySessionStore wraps s so plan's faults fire on its operations
// (a nil plan never injects). Injected errors carry the same
// transient/permanent classification as real store trouble.
func NewFaultySessionStore(s SessionStore, plan *FaultPlan) SessionStore {
	return store.NewFaulty(s, plan)
}

// StoreRetryPolicy shapes the capped, jittered exponential backoff the
// service applies to transient store faults (ServiceOptions.StoreRetry).
type StoreRetryPolicy = service.RetryPolicy

// ErrServiceOverloaded reports a solve shed at the
// ServiceOptions.MaxBacklog admission bound (HTTP 503 + Retry-After).
var ErrServiceOverloaded = service.ErrOverloaded

// ErrSessionQueueFull reports a change batch refused at the
// ServiceOptions.MaxPending bound (HTTP 429 + Retry-After).
var ErrSessionQueueFull = service.ErrQueueFull

// ErrSessionSeqConflict reports a journal append at a stale sequence —
// the write-ahead conflict recovery and ack-lost resolution key on it.
var ErrSessionSeqConflict = store.ErrSeqConflict

// IsTransientStoreError reports whether err is retryable store trouble
// (I/O, ENOSPC, injected faults) as opposed to corruption or misuse.
func IsTransientStoreError(err error) bool { return store.IsTransient(err) }

// ---- benchmark families -------------------------------------------------------

// BenchmarkSpec identifies a synthetic benchmark instance.
type BenchmarkSpec = gen.Spec

// Benchmarks returns the full registry of paper instances.
func Benchmarks() []BenchmarkSpec { return gen.All() }

// BenchmarkByName looks an instance up by its paper name.
func BenchmarkByName(name string) (BenchmarkSpec, bool) { return gen.ByName(name) }
